#include "mnp/program_image.hpp"

#include <algorithm>

namespace mnp::core {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

ProgramImage::ProgramImage(std::uint16_t program_id, std::size_t total_bytes,
                           std::uint16_t packets_per_segment,
                           std::size_t payload_bytes)
    : id_(program_id),
      packets_per_segment_(packets_per_segment),
      payload_bytes_(payload_bytes ? payload_bytes : 1) {
  if (packets_per_segment_ == 0) packets_per_segment_ = 1;
  data_.resize(total_bytes);
  for (std::size_t i = 0; i < total_bytes; ++i) {
    data_[i] = static_cast<std::uint8_t>(
        splitmix64((static_cast<std::uint64_t>(program_id) << 32) | i));
  }
  const std::size_t seg_bytes = packets_per_segment_ * payload_bytes_;
  num_segments_ = static_cast<std::uint16_t>((total_bytes + seg_bytes - 1) / seg_bytes);
  if (num_segments_ == 0) num_segments_ = 1;
}

ProgramImage::ProgramImage(std::uint16_t program_id,
                           std::vector<std::uint8_t> content,
                           std::uint16_t packets_per_segment,
                           std::size_t payload_bytes)
    : id_(program_id),
      packets_per_segment_(packets_per_segment ? packets_per_segment : 1),
      payload_bytes_(payload_bytes ? payload_bytes : 1),
      data_(std::move(content)) {
  const std::size_t seg_bytes = packets_per_segment_ * payload_bytes_;
  num_segments_ =
      static_cast<std::uint16_t>((data_.size() + seg_bytes - 1) / seg_bytes);
  if (num_segments_ == 0) num_segments_ = 1;
}

std::uint16_t ProgramImage::packets_in_segment(std::uint16_t seg) const {
  if (seg == 0 || seg > num_segments_) return 0;
  if (seg < num_segments_) return packets_per_segment_;
  const std::size_t seg_bytes = packets_per_segment_ * payload_bytes_;
  const std::size_t last_bytes = data_.size() - seg_bytes * (num_segments_ - 1);
  return static_cast<std::uint16_t>((last_bytes + payload_bytes_ - 1) / payload_bytes_);
}

std::size_t ProgramImage::packet_offset(std::uint16_t seg, std::uint16_t pkt) const {
  return (static_cast<std::size_t>(seg - 1) * packets_per_segment_ + pkt) *
         payload_bytes_;
}

std::vector<std::uint8_t> ProgramImage::packet_payload(std::uint16_t seg,
                                                       std::uint16_t pkt) const {
  std::vector<std::uint8_t> out;
  packet_payload_into(seg, pkt, out);
  return out;
}

void ProgramImage::packet_payload_into(std::uint16_t seg, std::uint16_t pkt,
                                       std::vector<std::uint8_t>& out) const {
  out.clear();
  const std::size_t offset = packet_offset(seg, pkt);
  if (offset >= data_.size()) return;
  const std::size_t len = std::min(payload_bytes_, data_.size() - offset);
  out.insert(out.end(), data_.begin() + static_cast<long>(offset),
             data_.begin() + static_cast<long>(offset + len));
}

}  // namespace mnp::core

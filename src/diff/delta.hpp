// Difference-based code updates.
//
// The paper's related-work section splits reprogramming into *entire code
// delivery* (MNP, Deluge, MOAP, XNP) and *difference-based adjustment*
// (Reijers & Langendoen) and notes MNP is complementary: its dissemination
// can carry a version delta instead of the full image. This module is
// that complement — an rsync-style block-matching encoder producing a
// compact delta a node applies against the image it already runs.
//
//   Delta delta = Delta::compute(v1_bytes, v2_bytes);
//   std::vector<uint8_t> wire = delta.serialize();   // disseminate via MNP
//   ...
//   Delta parsed = *Delta::parse(wire);
//   std::vector<uint8_t> v2 = parsed.apply(v1_bytes);
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

namespace mnp::diff {

/// Reuse `length` bytes starting at `old_offset` of the installed image.
struct CopyOp {
  std::uint32_t old_offset = 0;
  std::uint32_t length = 0;
};

/// Splice in bytes that exist only in the new image.
struct LiteralOp {
  std::vector<std::uint8_t> bytes;
};

using Op = std::variant<CopyOp, LiteralOp>;

class Delta {
 public:
  /// Block-matching encoder. Blocks of `block_size` bytes of the old
  /// image are indexed by hash; the new image is scanned greedily, and
  /// matches are extended byte-wise as far as they verify. Smaller blocks
  /// find more reuse but cost more per-op overhead.
  static Delta compute(const std::vector<std::uint8_t>& old_image,
                       const std::vector<std::uint8_t>& new_image,
                       std::size_t block_size = 32);

  /// Reconstructs the new image from the installed one. Returns an empty
  /// vector if any op reads outside `old_image` (corrupt delta).
  std::vector<std::uint8_t> apply(const std::vector<std::uint8_t>& old_image) const;

  /// Wire form: [op-count u32] then per op a tag byte ('C'/'L') and its
  /// fields in little-endian. This byte string is what gets disseminated.
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Delta> parse(const std::vector<std::uint8_t>& bytes);

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t serialized_size() const;
  /// Bytes of the new image covered by copies (the savings measure).
  std::size_t copied_bytes() const;
  std::size_t literal_bytes() const;

  void append_copy(std::uint32_t old_offset, std::uint32_t length);
  void append_literal(const std::uint8_t* data, std::size_t length);

 private:
  std::vector<Op> ops_;
};

}  // namespace mnp::diff

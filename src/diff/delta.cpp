#include "diff/delta.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace mnp::diff {

namespace {

std::uint64_t block_hash(const std::uint8_t* data, std::size_t len) {
  // FNV-1a: cheap and adequate (matches are byte-verified anyway).
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

bool get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = static_cast<std::uint32_t>(in[pos]) |
      (static_cast<std::uint32_t>(in[pos + 1]) << 8) |
      (static_cast<std::uint32_t>(in[pos + 2]) << 16) |
      (static_cast<std::uint32_t>(in[pos + 3]) << 24);
  pos += 4;
  return true;
}

}  // namespace

void Delta::append_copy(std::uint32_t old_offset, std::uint32_t length) {
  if (length == 0) return;
  // Coalesce with a preceding adjacent copy.
  if (!ops_.empty()) {
    if (auto* prev = std::get_if<CopyOp>(&ops_.back())) {
      if (prev->old_offset + prev->length == old_offset) {
        prev->length += length;
        return;
      }
    }
  }
  ops_.push_back(CopyOp{old_offset, length});
}

void Delta::append_literal(const std::uint8_t* data, std::size_t length) {
  if (length == 0) return;
  if (!ops_.empty()) {
    if (auto* prev = std::get_if<LiteralOp>(&ops_.back())) {
      prev->bytes.insert(prev->bytes.end(), data, data + length);
      return;
    }
  }
  LiteralOp op;
  op.bytes.assign(data, data + length);
  ops_.push_back(std::move(op));
}

Delta Delta::compute(const std::vector<std::uint8_t>& old_image,
                     const std::vector<std::uint8_t>& new_image,
                     std::size_t block_size) {
  Delta delta;
  if (block_size == 0) block_size = 32;
  // Index every aligned old block by hash (multimap: hashes may collide).
  std::unordered_multimap<std::uint64_t, std::size_t> index;
  if (old_image.size() >= block_size) {
    for (std::size_t off = 0; off + block_size <= old_image.size();
         off += block_size) {
      index.emplace(block_hash(old_image.data() + off, block_size), off);
    }
  }

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos + block_size <= new_image.size()) {
    const std::uint64_t h = block_hash(new_image.data() + pos, block_size);
    auto [lo, hi] = index.equal_range(h);
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    for (auto it = lo; it != hi; ++it) {
      const std::size_t off = it->second;
      if (std::memcmp(old_image.data() + off, new_image.data() + pos,
                      block_size) != 0) {
        continue;  // hash collision
      }
      // Extend the verified match as far as both images agree.
      std::size_t len = block_size;
      while (off + len < old_image.size() && pos + len < new_image.size() &&
             old_image[off + len] == new_image[pos + len]) {
        ++len;
      }
      // Deterministic tie-break: the unordered_multimap visits equal-hash
      // chains in an unspecified order, so equal-length candidates must
      // resolve by offset or the emitted script would vary across
      // standard libraries. Longest match wins, then lowest old offset.
      if (len > best_len || (len == best_len && len > 0 && off < best_off)) {
        best_len = len;
        best_off = off;
      }
    }
    if (best_len >= block_size) {
      delta.append_literal(new_image.data() + literal_start,
                           pos - literal_start);
      delta.append_copy(static_cast<std::uint32_t>(best_off),
                        static_cast<std::uint32_t>(best_len));
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  delta.append_literal(new_image.data() + literal_start,
                       new_image.size() - literal_start);
  return delta;
}

std::vector<std::uint8_t> Delta::apply(
    const std::vector<std::uint8_t>& old_image) const {
  std::vector<std::uint8_t> out;
  for (const Op& op : ops_) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) {
      if (copy->old_offset > old_image.size() ||
          copy->length > old_image.size() - copy->old_offset) {
        return {};  // reads outside the installed image: corrupt delta
      }
      out.insert(out.end(), old_image.begin() + copy->old_offset,
                 old_image.begin() + copy->old_offset + copy->length);
    } else {
      const auto& lit = std::get<LiteralOp>(op);
      out.insert(out.end(), lit.bytes.begin(), lit.bytes.end());
    }
  }
  return out;
}

std::vector<std::uint8_t> Delta::serialize() const {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(ops_.size()));
  for (const Op& op : ops_) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) {
      out.push_back('C');
      put_u32(out, copy->old_offset);
      put_u32(out, copy->length);
    } else {
      const auto& lit = std::get<LiteralOp>(op);
      out.push_back('L');
      put_u32(out, static_cast<std::uint32_t>(lit.bytes.size()));
      out.insert(out.end(), lit.bytes.begin(), lit.bytes.end());
    }
  }
  return out;
}

std::optional<Delta> Delta::parse(const std::vector<std::uint8_t>& bytes) {
  Delta delta;
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!get_u32(bytes, pos, count)) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos >= bytes.size()) return std::nullopt;
    const std::uint8_t tag = bytes[pos++];
    if (tag == 'C') {
      std::uint32_t offset = 0, length = 0;
      if (!get_u32(bytes, pos, offset) || !get_u32(bytes, pos, length)) {
        return std::nullopt;
      }
      delta.ops_.push_back(CopyOp{offset, length});
    } else if (tag == 'L') {
      std::uint32_t length = 0;
      if (!get_u32(bytes, pos, length)) return std::nullopt;
      if (pos + length > bytes.size()) return std::nullopt;
      LiteralOp op;
      op.bytes.assign(bytes.begin() + static_cast<long>(pos),
                      bytes.begin() + static_cast<long>(pos + length));
      delta.ops_.push_back(std::move(op));
      pos += length;
    } else {
      return std::nullopt;
    }
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  return delta;
}

std::size_t Delta::serialized_size() const {
  std::size_t size = 4;
  for (const Op& op : ops_) {
    if (std::holds_alternative<CopyOp>(op)) {
      size += 1 + 8;
    } else {
      size += 1 + 4 + std::get<LiteralOp>(op).bytes.size();
    }
  }
  return size;
}

std::size_t Delta::copied_bytes() const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) n += copy->length;
  }
  return n;
}

std::size_t Delta::literal_bytes() const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (const auto* lit = std::get_if<LiteralOp>(&op)) n += lit->bytes.size();
  }
  return n;
}

}  // namespace mnp::diff

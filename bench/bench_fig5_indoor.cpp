// Fig. 5: indoor experiment — 20 Mica-2 motes in a 5x4 grid in a
// classroom, power levels 3 and 4 (the two lowest), ~3 ft spacing,
// 200-packet (4.4 KB) program, basic MNP (no pipelining).
//
// Substitution: real motes -> the empirical-link simulator; "power level"
// maps to communication range in feet (documented inline). The paper's
// observable outputs — the parent map, the order in which nodes became
// senders, and the handful of senders — are printed in the same form.
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 5: indoor 5x4 grid, basic MNP (no pipelining) ===\n";
  std::cout << "(power level -> range mapping: level 4 ~ 9 ft, level 3 ~ 6 ft\n"
               " at 3 ft inter-node spacing)\n\n";

  struct Setting {
    const char* label;
    double range_ft;
  };
  for (const Setting s : {Setting{"power level 4", 9.0},
                          Setting{"power level 3", 6.0}}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 5;
    cfg.cols = 4;
    cfg.spacing_ft = 3.0;
    cfg.range_ft = s.range_ft;
    cfg.base = 0;  // upper-left corner, as in the paper
    cfg.mnp.pipelining = false;
    cfg.mnp.packets_per_segment = 200;  // one large EEPROM-tracked segment
    cfg.program_bytes = 200 * 22;  // 200 packets (~4.4 KB)
    cfg.seed = 11;
    harness::Observation observation;
    const auto r = harness::run_experiment(
        cfg, obs_cli.enabled() ? &observation : nullptr);
    if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

    std::cout << "---- " << s.label << " (range " << s.range_ft << " ft) ----\n";
    harness::print_summary(std::cout, s.label, r);
    harness::print_parent_map(std::cout, r, cfg.base);
    harness::print_sender_order(std::cout, r);
    std::cout << "\n";
  }
  std::cout << "shape check (paper): higher power => fewer senders, most\n"
               "nodes parented directly by the base; lower power => more\n"
               "hops, more senders.\n";
  return 0;
}

// Fig. 12: advertisements, download requests and data messages transmitted
// per one-minute window across the run, 20x20 grid, 5 segments.
//
// Paper shape: the number of data messages per minute stays roughly
// constant through the bulk of the run — a smooth pipelined flow — then
// tails off as the network completes.
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 12: message-type timeline, 20x20 grid, 5 segments ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.set_program_segments(5);
  cfg.seed = 8;
  harness::Observation observation;
  const auto r = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

  harness::print_timeline(std::cout, r);

  // Steadiness check over the core of the run (skip ramp-up minute 0 and
  // the final partial minute).
  util::RunningStats data_rate;
  const std::int64_t last_minute = r.timeline.rbegin()->first;
  for (const auto& [minute, counts] : r.timeline) {
    if (minute == 0 || minute >= last_minute - 1) continue;
    data_rate.add(static_cast<double>(counts[2]));
  }
  std::cout << "\ndata msgs/minute over the core of the run: mean "
            << data_rate.mean() << ", min " << data_rate.min() << ", max "
            << data_rate.max() << "\n";
  std::cout << "shape check (paper): the data series stays roughly constant\n"
               "during the run, indicating a smooth propagation flow.\n";
  return 0;
}

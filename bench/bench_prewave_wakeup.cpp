// Extension bench (paper Fig.-9 discussion): "we can use a protocol such
// as S-MAC or SS-TDMA that allows a node to synchronize its wake up and
// sleep time with its neighbors. In this case, a node could sleep for most
// of the time before the propagation wave arrives."
//
// Compares MNP as measured in the paper (radio on while waiting) against
// MNP with pre-wave duty cycling, on the Fig.-8 workload.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  std::cout << "=== Pre-wave duty cycling (Fig. 9's proposal), 20x20, 5 segments ===\n\n";
  std::printf("%-22s %14s %10s %22s %10s\n", "mode", "completion(s)", "ART(s)",
              "initial idle (s/node)", "complete");
  for (double duty : {0.0, 0.15}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.set_program_segments(5);
    cfg.seed = 8;
    cfg.max_sim_time = sim::hours(6);
    cfg.mnp.pre_wave_duty_cycle = duty;
    const auto r = harness::run_experiment(cfg);
    const double initial_idle =
        r.avg_active_radio_s() - r.avg_active_radio_after_adv_s();
    std::printf("%-22s %14.1f %10.1f %22.1f %9zu%%\n",
                duty > 0 ? "duty-cycled pre-wave" : "always-on (paper)",
                sim::to_seconds(r.completion_time), r.avg_active_radio_s(),
                initial_idle, 100 * r.completed_count / r.nodes.size());
  }
  std::cout << "\nexpectation: duty cycling shrinks the initial idle-listening\n"
               "share toward the duty fraction, pulling total ART down toward\n"
               "the Fig.-9 'ART without initial idle listening' curve, at a\n"
               "modest completion-time cost (advertisements now need to catch\n"
               "a listen window).\n";
  return 0;
}

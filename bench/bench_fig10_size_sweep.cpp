// Fig. 10: completion time, active radio time, and active radio time
// without initial idle listening as the program grows from 1 segment
// (~2.8 KB) to 10 segments (~28 KB), on a 20x20 grid.
//
// Paper shape: completion time is linear in program size; ART is around
// half of the completion time.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 10: program size sweep, 20x20 grid ===\n\n";
  std::printf("%8s %8s %14s %12s %20s\n", "segments", "KB", "completion(s)",
              "ART(s)", "ART w/o init idle(s)");
  double t1 = 0;
  for (std::uint16_t segments : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.set_program_segments(segments);
    cfg.seed = 10;
    harness::Observation observation;
    const auto r = harness::run_experiment(
        cfg, obs_cli.enabled() ? &observation : nullptr);
    if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;
    const double completion = sim::to_seconds(r.completion_time);
    if (segments == 1) t1 = completion;
    std::printf("%8u %8.1f %14.1f %12.1f %20.1f\n", segments,
                static_cast<double>(cfg.program_bytes) / 1024.0, completion,
                r.avg_active_radio_s(), r.avg_active_radio_after_adv_s());
  }
  std::cout << "\nshape check (paper): completion grows ~linearly with size\n"
               "(10 segments should cost several times 1 segment, t1=" << t1
            << " s),\nand ART stays a roughly constant fraction (~half) of "
               "completion.\n";
  return 0;
}

// Fleet-service benchmark (DESIGN.md §14). Two claims are gated here and
// written to BENCH_fleet.json (committed, so the trajectory is visible
// across PRs):
//
//  1. Dedup: a cache hit — resubmitting a manifest the store already
//     executed and fetching its metrics over HTTP — is served >= 100x
//     faster than re-simulating that manifest. This is the run store's
//     reason to exist: sweep campaigns resubmit aggressively and pay
//     socket latency, not simulator time.
//  2. Fleet throughput + fidelity: >= 8 concurrent client threads submit
//     >= 64 distinct queued runs over loopback HTTP; every stored metrics
//     export is byte-identical to a sequential one-shot CLI-style
//     execution of the same manifest. Concurrency changes wall-clock
//     only, never a byte of results.
//
// `bench_fleet --perf-json[=DIR]` writes DIR/BENCH_fleet.json and exits
// nonzero when either gate fails. The default invocation runs a reduced
// dedup check only.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "service/http_client.hpp"
#include "service/json.hpp"
#include "service/run_request.hpp"
#include "service/server.hpp"

namespace {

using namespace mnp;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The dedup half uses a run big enough that re-simulating it costs
// hundreds of milliseconds; the fleet half uses the smallest interesting
// grid so 64 runs finish quickly.
const std::vector<std::pair<std::string, std::string>> kDedupRun = {
    {"rows", "10"}, {"cols", "10"}, {"segments", "2"},
};
const std::vector<std::pair<std::string, std::string>> kFleetRun = {
    {"rows", "5"}, {"cols", "5"}, {"segments", "1"},
    {"max_sim_time_s", "900"},
};

harness::ExperimentConfig config_of(
    const std::vector<std::pair<std::string, std::string>>& options,
    std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  std::string error;
  for (const auto& [key, value] : options) {
    if (!service::apply_run_option(cfg, key, value, &error)) {
      std::fprintf(stderr, "bench_fleet: bad option: %s\n", error.c_str());
      std::exit(1);
    }
  }
  cfg.seed = seed;
  return cfg;
}

/// CLI-style reference execution: observed one-shot run, manifest bytes
/// exactly as `mnp_sim_cli --metrics-out` would write them.
std::string reference_metrics(const harness::ExperimentConfig& cfg) {
  harness::Observation observation;
  (void)harness::run_experiment(cfg, &observation);
  std::ostringstream os;
  harness::write_run_manifest(os, cfg, cfg.seed, 1, observation);
  return os.str();
}

std::uint64_t first_run_id(const std::string& body) {
  const auto parsed = service::parse_json(body);
  if (!parsed.ok) return 0;
  const auto* runs = parsed.value.find("runs");
  if (runs == nullptr || runs->items.empty()) return 0;
  const auto* id = runs->items[0].find("id");
  return id != nullptr ? static_cast<std::uint64_t>(id->number) : 0;
}

struct DedupResult {
  double fresh_ms = 0.0;    // one local re-simulation of the manifest
  double dedup_ms = 0.0;    // median resubmit+fetch HTTP round trip
  double speedup = 0.0;
  bool gate = false;
};

DedupResult measure_dedup(service::FleetServer& server) {
  const std::uint16_t port = server.port();
  const std::string body = service::run_request_json(kDedupRun, "", {7});

  // Prime the store with the real execution.
  const auto submitted =
      service::http_request("127.0.0.1", port, "POST", "/runs", body);
  const std::uint64_t id = first_run_id(submitted.body);
  if (id == 0 || !server.store().wait_terminal(id, 600000)) {
    std::fprintf(stderr, "bench_fleet: priming run did not finish\n");
    std::exit(1);
  }

  DedupResult out;
  // Cost of actually re-simulating this manifest (what a cache miss pays).
  {
    const auto start = std::chrono::steady_clock::now();
    (void)reference_metrics(config_of(kDedupRun, 7));
    out.fresh_ms = ms_since(start);
  }
  // Cost of a dedup hit: resubmit the same manifest, fetch the stored
  // bytes. Median of 20 full HTTP round trips (two connections each).
  std::vector<double> trips;
  const std::string target = "/runs/" + std::to_string(id) + "/metrics";
  for (int i = 0; i < 20; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto again =
        service::http_request("127.0.0.1", port, "POST", "/runs", body);
    const auto metrics =
        service::http_request("127.0.0.1", port, "GET", target, "");
    trips.push_back(ms_since(start));
    if (again.status != 200 || metrics.status != 200 ||
        metrics.body.empty()) {
      std::fprintf(stderr, "bench_fleet: dedup round trip failed\n");
      std::exit(1);
    }
  }
  std::sort(trips.begin(), trips.end());
  out.dedup_ms = trips[trips.size() / 2];
  out.speedup = out.dedup_ms > 0.0 ? out.fresh_ms / out.dedup_ms : 0.0;
  out.gate = out.speedup >= 100.0;
  return out;
}

struct FleetResult {
  std::size_t clients = 0;
  std::size_t runs = 0;
  std::size_t identical = 0;
  double submit_to_done_ms = 0.0;
  bool gate = false;
};

FleetResult measure_fleet(service::FleetServer& server, std::size_t clients,
                          std::size_t runs) {
  const std::uint16_t port = server.port();
  FleetResult out;
  out.clients = clients;
  out.runs = runs;

  // Each client thread submits its own slice of distinct seeds, then
  // polls its runs to completion and fetches their metrics.
  std::vector<std::vector<std::string>> fetched(clients);
  std::vector<std::vector<std::uint64_t>> seeds(clients);
  for (std::size_t r = 0; r < runs; ++r) {
    seeds[r % clients].push_back(1000 + r);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([c, port, &seeds, &fetched] {
      const auto submitted = service::http_request(
          "127.0.0.1", port, "POST", "/runs",
          service::run_request_json(kFleetRun, "", seeds[c]));
      const auto parsed = service::parse_json(submitted.body);
      const auto* run_list =
          parsed.ok ? parsed.value.find("runs") : nullptr;
      if (run_list == nullptr) return;
      for (const auto& run : run_list->items) {
        const auto id =
            static_cast<std::uint64_t>(run.find("id")->number);
        const std::string target = "/runs/" + std::to_string(id);
        for (;;) {
          const auto status =
              service::http_request("127.0.0.1", port, "GET", target, "");
          const auto sp = service::parse_json(status.body);
          const auto* state = sp.ok ? sp.value.find("state") : nullptr;
          if (state != nullptr &&
              (state->string == "done" || state->string == "failed")) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        const auto metrics = service::http_request(
            "127.0.0.1", port, "GET", target + "/metrics", "");
        fetched[c].push_back(metrics.body);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.submit_to_done_ms = ms_since(start);

  // Sequential one-shot references, compared byte-for-byte.
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t i = 0; i < seeds[c].size(); ++i) {
      if (i < fetched[c].size() &&
          fetched[c][i] == reference_metrics(config_of(kFleetRun, seeds[c][i]))) {
        ++out.identical;
      }
    }
  }
  out.gate = out.identical == runs;
  return out;
}

int run_perf_json(const std::string& dir) {
  service::FleetServerOptions options;
  options.port = 0;
  options.jobs = 0;  // MNP_SWEEP_JOBS + hardware clamp, like run_sweep
  options.progress_interval = sim::sec(30);
  service::FleetServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_fleet: %s\n", error.c_str());
    return 1;
  }

  const DedupResult dedup = measure_dedup(server);
  std::printf(
      "dedup: fresh simulation %.1f ms, cached round trip %.3f ms "
      "(%.0fx, gate >= 100x: %s)\n",
      dedup.fresh_ms, dedup.dedup_ms, dedup.speedup,
      dedup.gate ? "pass" : "FAIL");

  const FleetResult fleet = measure_fleet(server, 8, 64);
  std::printf(
      "fleet: %zu runs from %zu clients in %.0f ms, %zu/%zu byte-identical "
      "to sequential one-shot runs (gate: %s)\n",
      fleet.runs, fleet.clients, fleet.submit_to_done_ms, fleet.identical,
      fleet.runs, fleet.gate ? "pass" : "FAIL");

  const std::string path = dir + "/BENCH_fleet.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"fleet\",\n"
      "  \"dedup\": {\n"
      "    \"config\": \"10x10 grid, 2 segments, seed 7\",\n"
      "    \"fresh_simulation_ms\": %.1f,\n"
      "    \"cached_roundtrip_ms\": %.3f,\n"
      "    \"speedup\": %.0f\n"
      "  },\n"
      "  \"fleet\": {\n"
      "    \"config\": \"5x5 grid, 1 segment, seeds 1000..1063\",\n"
      "    \"clients\": %zu,\n"
      "    \"runs\": %zu,\n"
      "    \"workers\": %zu,\n"
      "    \"submit_to_done_ms\": %.0f,\n"
      "    \"byte_identical\": %zu\n"
      "  },\n"
      "  \"gate_dedup_100x\": %s,\n"
      "  \"gate_fleet_byte_identical\": %s\n"
      "}\n",
      dedup.fresh_ms, dedup.dedup_ms, dedup.speedup, fleet.clients,
      fleet.runs, server.scheduler().workers(), fleet.submit_to_done_ms,
      fleet.identical, dedup.gate ? "true" : "false",
      fleet.gate ? "true" : "false");
  std::fclose(f);
  std::printf("bench_fleet: %s\n", path.c_str());
  server.stop();

  int rc = 0;
  if (!dedup.gate) {
    std::fprintf(stderr,
                 "bench_fleet: dedup speedup %.0fx below the 100x gate\n",
                 dedup.speedup);
    rc = 1;
  }
  if (!fleet.gate) {
    std::fprintf(stderr,
                 "bench_fleet: %zu/%zu fleet results byte-identical\n",
                 fleet.identical, fleet.runs);
    rc = 1;
  }
  return rc;
}

int run_quick() {
  service::FleetServerOptions options;
  options.port = 0;
  service::FleetServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_fleet: %s\n", error.c_str());
    return 1;
  }
  const DedupResult dedup = measure_dedup(server);
  std::printf("dedup: fresh %.1f ms, cached %.3f ms (%.0fx)\n",
              dedup.fresh_ms, dedup.dedup_ms, dedup.speedup);
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--perf-json", 11)) {
      const char* eq = std::strchr(argv[i], '=');
      return run_perf_json(eq ? eq + 1 : ".");
    }
  }
  return run_quick();
}

// NCast decode-kernel and coded-vs-uncoded benchmark (DESIGN.md §13).
//
// Two claims are gated here and written to BENCH_nc.json (committed, so
// the trajectory is visible across PRs):
//
//  1. Kernel: the SSSE3 GF(256) row kernel decodes at >= 4x the scalar
//     table path on 1 KiB symbols — the whole reason the PSHUFB path and
//     its runtime dispatch exist. Both kernels process the byte-identical
//     packet sequence, so the ratio compares pure arithmetic.
//  2. Protocol: under >= 20% link loss, NCast disseminates with fewer
//     total messages than MNP. Packets carry rank instead of identity, so
//     coded streams never pay MNP's per-loss request/retransmit round
//     trips — this is the structural payoff the baseline is in the zoo to
//     demonstrate. Churn and mobility cases ride along (reported, not
//     gated: a crashed decoder rejoins via the generation journal).
//
// `bench_nc_decode --perf-json[=DIR]` writes DIR/BENCH_nc.json and exits
// nonzero when either gate fails. The default invocation prints the quick
// kernel numbers only.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/ncast_node.hpp"
#include "harness/experiment.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"
#include "util/gf256.hpp"

namespace {

using namespace mnp;
namespace gf = util::gf256;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// --- kernel half ------------------------------------------------------------

struct CodedSet {
  std::uint8_t k = 0;
  std::size_t symbol_bytes = 0;
  std::vector<std::vector<std::uint8_t>> sources;
  std::vector<std::vector<std::uint8_t>> coeffs;   // per coded packet
  std::vector<std::vector<std::uint8_t>> symbols;  // per coded packet
};

/// Pre-encodes 2k coded packets over random sources so the timed loop is
/// decode-only. Encoding runs before any kernel forcing; both kernels see
/// the identical packet sequence.
CodedSet make_coded_set(std::uint8_t k, std::size_t symbol_bytes) {
  CodedSet set;
  set.k = k;
  set.symbol_bytes = symbol_bytes;
  sim::Rng rng(0xBE6C);
  set.sources.resize(k);
  for (auto& s : set.sources) {
    s.resize(symbol_bytes);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  for (std::uint16_t seed = 0; seed < 2u * k; ++seed) {
    std::vector<std::uint8_t> coeff(k);
    baselines::ncast_expand_coefficients(1, seed, k, coeff.data());
    std::vector<std::uint8_t> sym(symbol_bytes, 0);
    for (std::uint8_t i = 0; i < k; ++i) {
      gf::addmul_row(sym.data(), set.sources[i].data(), symbol_bytes, coeff[i]);
    }
    set.coeffs.push_back(std::move(coeff));
    set.symbols.push_back(std::move(sym));
  }
  return set;
}

struct KernelRun {
  double wall_ms = 0.0;
  double mbytes_per_sec = 0.0;
  bool verified = false;
};

/// Times `reps` full generation decodes (reset, insert until complete,
/// back-substitute) under the currently forced kernel.
KernelRun run_kernel(const CodedSet& set, int reps) {
  baselines::RlncDecoder dec;
  KernelRun out;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    dec.reset(set.k, set.symbol_bytes);
    for (std::size_t p = 0; p < set.coeffs.size() && !dec.complete(); ++p) {
      dec.insert(set.coeffs[p].data(), set.symbols[p].data(), set.symbol_bytes);
    }
    dec.decode();
  }
  out.wall_ms = ms_since(start);
  const double decoded_bytes =
      static_cast<double>(reps) * set.k * set.symbol_bytes;
  out.mbytes_per_sec =
      out.wall_ms > 0.0 ? decoded_bytes / 1e6 / (out.wall_ms / 1000.0) : 0.0;
  out.verified = dec.decoded();
  for (std::uint8_t i = 0; out.verified && i < set.k; ++i) {
    out.verified = 0 == std::memcmp(dec.source_packet(i),
                                    set.sources[i].data(), set.symbol_bytes);
  }
  return out;
}

// --- protocol half ----------------------------------------------------------

struct ProtoCase {
  const char* name;
  double degrade = 1.0;  // link success multiplier (0.8 => 20% loss)
  bool churn = false;
  bool mobility = false;
};

struct ProtoStats {
  bool completed = false;
  double completion_s = 0.0;
  std::uint64_t messages = 0;
  double msgs_per_node = 0.0;
};

ProtoStats run_protocol(harness::Protocol proto, const ProtoCase& c) {
  harness::ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.range_ft = 25.0;
  cfg.empirical_links = false;  // controlled loss: disk links x degrade
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(4);
  scenario::ScenarioBuilder b;
  if (c.degrade < 1.0) {
    b.degrade(sim::msec(1), sim::hours(4), c.degrade);
  }
  if (c.churn) b.kill(sim::sec(30), 5, /*down_for=*/sim::sec(60));
  if (c.mobility) b.move(sim::sec(30), 15, 5.0, 5.0, /*over=*/sim::sec(30));
  cfg.scenario = b.build(c.name);
  const auto r = harness::run_experiment(cfg);
  ProtoStats s;
  s.completed = r.all_completed && r.verified_count() == r.nodes.size();
  s.completion_s = r.completion_time == sim::kNever
                       ? -1.0
                       : sim::to_seconds(r.completion_time);
  s.messages = r.transmissions;
  s.msgs_per_node = r.avg_messages_sent();
  return s;
}

// --- drivers ----------------------------------------------------------------

int run_perf_json(const std::string& dir) {
  // Kernel gate: 1 KiB symbols, k = 16 (the decoder supports any symbol
  // size; the protocol's 22-byte symbols are reported alongside for
  // context — short rows amortize the PSHUFB setup less).
  const CodedSet big = make_coded_set(16, 1024);
  const CodedSet wire = make_coded_set(16, 22);
  constexpr int kReps = 400;
  constexpr int kWireReps = 4000;

  gf::set_kernel(gf::Kernel::kScalar);
  const KernelRun scalar_big = run_kernel(big, kReps);
  const KernelRun scalar_wire = run_kernel(wire, kWireReps);
  KernelRun simd_big, simd_wire;
  if (gf::simd_available()) {
    gf::set_kernel(gf::Kernel::kSimd);
    simd_big = run_kernel(big, kReps);
    simd_wire = run_kernel(wire, kWireReps);
  }
  gf::set_kernel(gf::Kernel::kAuto);
  const double speedup = scalar_big.mbytes_per_sec > 0.0
                             ? simd_big.mbytes_per_sec / scalar_big.mbytes_per_sec
                             : 0.0;
  std::printf(
      "kernel 1KiB: scalar %.1f MB/s, %s %.1f MB/s (%.1fx)\n"
      "kernel 22B : scalar %.1f MB/s, %s %.1f MB/s\n",
      scalar_big.mbytes_per_sec, gf::simd_available() ? "ssse3" : "n/a",
      simd_big.mbytes_per_sec, speedup, scalar_wire.mbytes_per_sec,
      gf::simd_available() ? "ssse3" : "n/a", simd_wire.mbytes_per_sec);

  const std::vector<ProtoCase> cases = {
      {"loss20", 0.8, false, false},
      {"loss40", 0.6, false, false},
      {"churn", 0.8, true, false},
      {"mobility", 0.8, false, true},
  };
  std::vector<ProtoStats> mnp_stats, ncast_stats;
  bool fewer_messages_under_loss = true;
  for (const ProtoCase& c : cases) {
    std::printf("bench_nc_decode: case %s...\n", c.name);
    std::fflush(stdout);
    mnp_stats.push_back(run_protocol(harness::Protocol::kMnp, c));
    ncast_stats.push_back(run_protocol(harness::Protocol::kNcast, c));
    const auto& m = mnp_stats.back();
    const auto& n = ncast_stats.back();
    std::printf("  MNP   %6llu msgs  %7.1f s  %s\n  NCast %6llu msgs  %7.1f s  %s\n",
                static_cast<unsigned long long>(m.messages), m.completion_s,
                m.completed ? "ok" : "INCOMPLETE",
                static_cast<unsigned long long>(n.messages), n.completion_s,
                n.completed ? "ok" : "INCOMPLETE");
    if (c.degrade <= 0.8 && !c.churn && !c.mobility) {
      fewer_messages_under_loss =
          fewer_messages_under_loss && n.completed && m.completed &&
          n.messages < m.messages;
    }
  }

  const std::string path = dir + "/BENCH_nc.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"nc_decode\",\n"
               "  \"kernel\": {\n"
               "    \"simd_available\": %s,\n"
               "    \"generation_size\": 16,\n"
               "    \"scalar_1kib_mbps\": %.1f,\n"
               "    \"simd_1kib_mbps\": %.1f,\n"
               "    \"simd_over_scalar_1kib\": %.1f,\n"
               "    \"scalar_22b_mbps\": %.1f,\n"
               "    \"simd_22b_mbps\": %.1f,\n"
               "    \"roundtrip_verified\": %s\n"
               "  },\n"
               "  \"protocol\": {\n"
               "    \"config\": \"4x4 grid, 2 segments, disk links, "
               "scenario-degraded success\",\n"
               "    \"cases\": [\n",
               gf::simd_available() ? "true" : "false",
               scalar_big.mbytes_per_sec, simd_big.mbytes_per_sec, speedup,
               scalar_wire.mbytes_per_sec, simd_wire.mbytes_per_sec,
               (scalar_big.verified &&
                (!gf::simd_available() || simd_big.verified))
                   ? "true"
                   : "false");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& m = mnp_stats[i];
    const auto& n = ncast_stats[i];
    std::fprintf(
        f,
        "      {\"case\": \"%s\", \"loss\": %.2f, \"churn\": %s, "
        "\"mobility\": %s,\n"
        "       \"mnp\": {\"messages\": %llu, \"msgs_per_node\": %.1f, "
        "\"completion_s\": %.1f, \"completed\": %s},\n"
        "       \"ncast\": {\"messages\": %llu, \"msgs_per_node\": %.1f, "
        "\"completion_s\": %.1f, \"completed\": %s}}%s\n",
        c.name, 1.0 - c.degrade, c.churn ? "true" : "false",
        c.mobility ? "true" : "false",
        static_cast<unsigned long long>(m.messages), m.msgs_per_node,
        m.completion_s, m.completed ? "true" : "false",
        static_cast<unsigned long long>(n.messages), n.msgs_per_node,
        n.completion_s, n.completed ? "true" : "false",
        i + 1 == cases.size() ? "" : ",");
  }
  std::fprintf(f,
               "    ]\n"
               "  },\n"
               "  \"gate_simd_4x_scalar\": %s,\n"
               "  \"gate_ncast_fewer_msgs_at_loss\": %s\n"
               "}\n",
               (!gf::simd_available() || speedup >= 4.0) ? "true" : "false",
               fewer_messages_under_loss ? "true" : "false");
  std::fclose(f);
  std::printf("bench_nc_decode: %s\n", path.c_str());

  int rc = 0;
  if (gf::simd_available() && speedup < 4.0) {
    std::fprintf(stderr,
                 "bench_nc_decode: SIMD speedup %.1fx below the 4x gate\n",
                 speedup);
    rc = 1;
  }
  if (!fewer_messages_under_loss) {
    std::fprintf(stderr,
                 "bench_nc_decode: NCast did not beat MNP on messages "
                 "under >=20%% loss\n");
    rc = 1;
  }
  return rc;
}

int run_quick() {
  const CodedSet big = make_coded_set(16, 1024);
  gf::set_kernel(gf::Kernel::kScalar);
  const KernelRun scalar = run_kernel(big, 100);
  KernelRun simd;
  if (gf::simd_available()) {
    gf::set_kernel(gf::Kernel::kSimd);
    simd = run_kernel(big, 100);
  }
  gf::set_kernel(gf::Kernel::kAuto);
  std::printf("decode 16x1KiB: scalar %.1f MB/s, simd %.1f MB/s (%s)\n",
              scalar.mbytes_per_sec, simd.mbytes_per_sec,
              scalar.verified && (!gf::simd_available() || simd.verified)
                  ? "verified"
                  : "MISMATCH");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--perf-json", 11)) {
      const char* eq = std::strchr(argv[i], '=');
      return run_perf_json(eq ? eq + 1 : ".");
    }
  }
  return run_quick();
}

// Section 5 / related-work claim: Hui & Culler report that in dense
// networks Deluge's propagation along the DIAGONAL is significantly slower
// than along the EDGES (hidden-terminal collisions are worst in the
// interior). The paper states MNP does not exhibit this behaviour because
// sender selection suppresses concurrent senders.
//
// We push one page/segment through a dense 15x15 grid with both protocols
// (base at a corner) and compare propagation speed along the two edges
// against the diagonal, normalized per FOOT of physical distance (the
// diagonal neighbor is a single radio hop at 14.1 ft).
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

namespace {

struct Speeds {
  double edge_s_per_ft;
  double diag_s_per_ft;
};

Speeds measure(const mnp::harness::RunResult& r, std::size_t n, double spacing) {
  using mnp::sim::to_seconds;
  double edge_total = 0;
  int edge_count = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dist = static_cast<double>(i) * spacing;
    const auto right = r.nodes[i].completion;     // along row 0
    const auto down = r.nodes[i * n].completion;  // along column 0
    if (right >= 0) {
      edge_total += to_seconds(right) / dist;
      ++edge_count;
    }
    if (down >= 0) {
      edge_total += to_seconds(down) / dist;
      ++edge_count;
    }
  }
  double diag_total = 0;
  int diag_count = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dist = static_cast<double>(i) * spacing * 1.41421356;
    const auto c = r.nodes[i * n + i].completion;
    if (c >= 0) {
      diag_total += to_seconds(c) / dist;
      ++diag_count;
    }
  }
  return {edge_count ? edge_total / edge_count : 0.0,
          diag_count ? diag_total / diag_count : 0.0};
}

}  // namespace

int main() {
  using namespace mnp;
  constexpr std::size_t kN = 15;
  constexpr double kSpacing = 10.0;
  std::cout << "=== Edge vs diagonal propagation speed, dense " << kN << "x"
            << kN << " grid ===\n\n";
  std::printf("%-8s %18s %18s %18s %14s\n", "proto", "edge (s per ft)",
              "diag (s per ft)", "diag/edge ratio", "collisions");
  for (auto protocol : {harness::Protocol::kMnp, harness::Protocol::kDeluge}) {
    harness::ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.rows = kN;
    cfg.cols = kN;
    cfg.spacing_ft = kSpacing;
    cfg.base = 0;
    cfg.range_ft = 25.0;
    cfg.program_bytes = (protocol == harness::Protocol::kDeluge)
                            ? 48 * 22   // one Deluge page
                            : 128 * 22; // one MNP segment
    cfg.seed = 29;
    cfg.max_sim_time = sim::hours(6);
    const auto r = harness::run_experiment(cfg);
    const Speeds s = measure(r, kN, kSpacing);
    std::printf("%-8s %18.3f %18.3f %18.2f %14llu\n",
                harness::protocol_name(protocol), s.edge_s_per_ft,
                s.diag_s_per_ft,
                s.edge_s_per_ft > 0 ? s.diag_s_per_ft / s.edge_s_per_ft : 0.0,
                static_cast<unsigned long long>(r.collisions));
  }
  std::cout << "\nshape check: MNP's diagonal/edge ratio stays close to 1 —\n"
               "the paper's claim that its sender selection removes the\n"
               "interior slowdown. Deluge's published diagonal anomaly is\n"
               "testbed-dependent and does not reproduce under this channel\n"
               "model (see EXPERIMENTS.md for the discussion).\n";
  return 0;
}

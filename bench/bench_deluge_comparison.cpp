// Section 5 comparison vs Deluge: completion time and (the paper's key
// metric) ACTIVE RADIO TIME for the same image pushed through the same
// 20x20 network. Deluge's radio never sleeps, so its active radio time
// tracks its completion time; MNP trades some completion time for a much
// smaller active radio time.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

namespace {

mnp::harness::RunResult run(mnp::harness::Protocol protocol, std::size_t bytes) {
  mnp::harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.program_bytes = bytes;
  cfg.seed = 17;
  cfg.max_sim_time = mnp::sim::hours(6);
  return mnp::harness::run_experiment(cfg);
}

}  // namespace

int main() {
  using namespace mnp;
  std::cout << "=== MNP vs Deluge, 20x20 grid ===\n\n";
  std::printf("%-8s %8s %14s %10s %16s %12s %12s\n", "proto", "KB",
              "completion(s)", "ART(s)", "ART/completion", "msgs/node",
              "energy/node");
  for (std::uint16_t segments : {2, 5}) {
    const std::size_t bytes = static_cast<std::size_t>(segments) * 128 * 22;
    const auto mnp_r = run(harness::Protocol::kMnp, bytes);
    const auto del_r = run(harness::Protocol::kDeluge, bytes);
    const auto print_row = [bytes](const char* name,
                                   const harness::RunResult& r) {
      const double completion = sim::to_seconds(r.completion_time);
      std::printf("%-8s %8.1f %14.1f %10.1f %15.1f%% %12.1f %12.0f\n", name,
                  static_cast<double>(bytes) / 1024.0, completion,
                  r.avg_active_radio_s(),
                  completion > 0 ? 100.0 * r.avg_active_radio_s() / completion
                                 : 0.0,
                  r.avg_messages_sent(),
                  r.total_energy_nah() / static_cast<double>(r.nodes.size()));
    };
    print_row("MNP", mnp_r);
    print_row("Deluge", del_r);
    const double ratio_completion = sim::to_seconds(mnp_r.completion_time) /
                                    sim::to_seconds(del_r.completion_time);
    const double ratio_art =
        mnp_r.avg_active_radio_s() / del_r.avg_active_radio_s();
    std::printf("  -> MNP/Deluge completion: %.2fx; MNP/Deluge ART: %.2fx; "
                "bulk overlaps MNP %llu vs Deluge %llu\n\n",
                ratio_completion, ratio_art,
                static_cast<unsigned long long>(mnp_r.bulk_overlaps),
                static_cast<unsigned long long>(del_r.bulk_overlaps));
  }
  std::cout << "shape check (paper): Deluge keeps its radio on for the whole\n"
               "run (ART/completion ~100%); MNP's ART is a fraction of its\n"
               "completion time, so the energy per node is far lower even if\n"
               "completion takes somewhat longer. Sender selection also\n"
               "yields fewer concurrent bulk-sender overlaps per data packet\n"
               "than Deluge's uncoordinated senders.\n";
  return 0;
}

// Fig. 13: code propagation progress — one segment (~2.8 KB) pushed
// through a 15x15 network; snapshots of who holds the code at 30%, 60%
// and 90% of the completion time.
//
// Paper shape: a wave expanding from the base-station corner at a fairly
// constant rate, with no edge-vs-diagonal anomaly.
#include <cmath>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 13: propagation progress, 15x15 grid, 1 segment ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 15;
  cfg.cols = 15;
  cfg.set_program_segments(1);
  cfg.base = 0;
  cfg.seed = 13;
  harness::Observation observation;
  const auto r = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

  harness::print_summary(std::cout, "MNP 15x15 / 1 segment", r);
  std::cout << "\n";
  harness::print_propagation_snapshots(std::cout, r, {0.3, 0.6, 0.9});

  // Constant-rate check: completion time of a node vs its grid distance
  // from the base should be close to proportional.
  double max_hop = 0;
  for (std::size_t row = 0; row < 15; ++row) {
    for (std::size_t col = 0; col < 15; ++col) {
      max_hop = std::max(max_hop, static_cast<double>(row + col));
    }
  }
  std::cout << "completion time by Manhattan distance ring from base:\n";
  for (int ring = 0; ring <= 28; ring += 4) {
    double sum = 0;
    int n = 0;
    for (std::size_t row = 0; row < 15; ++row) {
      for (std::size_t col = 0; col < 15; ++col) {
        if (static_cast<int>(row + col) >= ring &&
            static_cast<int>(row + col) < ring + 4) {
          sum += sim::to_seconds(r.nodes[row * 15 + col].completion);
          ++n;
        }
      }
    }
    if (n > 0) {
      std::cout << "  ring " << ring << "-" << ring + 3 << ": avg "
                << sum / n << " s\n";
    }
  }
  std::cout << "shape check (paper): data propagates at a fairly constant\n"
               "rate from the base to the far corner.\n";
  return 0;
}

// Robustness bench: the paper says "We repeated our experiments several
// times. We found that the results are similar. Although the actual
// sensor nodes that became sources differed from one run to another, the
// sender selection algorithm ensured that two nearby sensors never
// transmitted simultaneously."
//
// We repeat the headline 10x10 / 2-segment run across 10 seeds and report
// the spread of every metric, plus the reliability count (every run must
// reach 100% delivery — the paper's hard requirement).
#include <cstring>
#include <iostream>
#include <string>

#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  std::size_t runs = 10;
  harness::SweepOptions options;  // jobs defaults to MNP_SWEEP_JOBS
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      options.jobs = std::stoul(argv[++i]);
    } else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
      runs = std::stoul(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--runs N] [--jobs N]\n";
      return 2;
    }
  }
  std::cout << "=== Seed stability: MNP 10x10, 2 segments, " << runs
            << " seeds, " << harness::resolve_sweep_jobs(options.jobs)
            << " job(s) ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(4);
  const auto sweep = harness::run_sweep(cfg, runs, /*first_seed=*/100, options);

  std::cout << "runs fully completed: " << sweep.fully_completed_runs << "/"
            << sweep.runs << "  (reliability requirement: must be all)\n\n";
  std::cout << "completion time (s): "
            << harness::format_stat(sweep.completion_s) << "\n";
  std::cout << "avg ART (s):         "
            << harness::format_stat(sweep.avg_art_s) << "\n";
  std::cout << "avg ART post-adv (s):"
            << harness::format_stat(sweep.avg_art_post_adv_s) << "\n";
  std::cout << "msgs/node:           " << harness::format_stat(sweep.avg_msgs)
            << "\n";
  std::cout << "effective senders:   "
            << harness::format_stat(sweep.effective_senders) << "\n";
  std::cout << "collisions:          "
            << harness::format_stat(sweep.collisions, 0) << "\n";
  std::cout << "bulk overlaps:       "
            << harness::format_stat(sweep.bulk_overlaps, 0) << "\n";
  std::cout << "energy/node (nAh):   "
            << harness::format_stat(sweep.energy_per_node_nah, 0) << "\n";
  std::cout << "\nshape check (paper): every run completes; metrics vary\n"
               "modestly while the identity of the senders varies freely.\n";
  return sweep.fully_completed_runs == sweep.runs ? 0 : 1;
}

// Robustness bench: the paper says "We repeated our experiments several
// times. We found that the results are similar. Although the actual
// sensor nodes that became sources differed from one run to another, the
// sender selection algorithm ensured that two nearby sensors never
// transmitted simultaneously."
//
// We repeat the headline 10x10 / 2-segment run across 10 seeds and report
// the spread of every metric, plus the reliability count (every run must
// reach 100% delivery — the paper's hard requirement).
#include <iostream>

#include "harness/sweep.hpp"

int main() {
  using namespace mnp;
  std::cout << "=== Seed stability: MNP 10x10, 2 segments, 10 seeds ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(4);
  const auto sweep = harness::run_sweep(cfg, 10, /*first_seed=*/100);

  std::cout << "runs fully completed: " << sweep.fully_completed_runs << "/"
            << sweep.runs << "  (reliability requirement: must be all)\n\n";
  std::cout << "completion time (s): "
            << harness::format_stat(sweep.completion_s) << "\n";
  std::cout << "avg ART (s):         "
            << harness::format_stat(sweep.avg_art_s) << "\n";
  std::cout << "avg ART post-adv (s):"
            << harness::format_stat(sweep.avg_art_post_adv_s) << "\n";
  std::cout << "msgs/node:           " << harness::format_stat(sweep.avg_msgs)
            << "\n";
  std::cout << "effective senders:   "
            << harness::format_stat(sweep.effective_senders) << "\n";
  std::cout << "collisions:          "
            << harness::format_stat(sweep.collisions, 0) << "\n";
  std::cout << "bulk overlaps:       "
            << harness::format_stat(sweep.bulk_overlaps, 0) << "\n";
  std::cout << "energy/node (nAh):   "
            << harness::format_stat(sweep.energy_per_node_nah, 0) << "\n";
  std::cout << "\nshape check (paper): every run completes; metrics vary\n"
               "modestly while the identity of the senders varies freely.\n";
  return sweep.fully_completed_runs == sweep.runs ? 0 : 1;
}

// Table 1: "Power required by various Mica operations" — the cost model
// every energy number in this repository is priced with, plus a sanity
// demonstration: the per-operation breakdown of one small dissemination.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  std::cout << "=== Table 1: Power required by various Mica operations ===\n\n";
  energy::EnergyModel m;
  std::printf("%-38s %10s\n", "Operation", "nAh");
  std::printf("%-38s %10.3f\n", "Transmitting a packet", m.tx_packet_nah);
  std::printf("%-38s %10.3f\n", "Receiving a packet", m.rx_packet_nah);
  std::printf("%-38s %10.3f\n", "Idle listening for 1 millisecond",
              m.idle_listen_per_ms_nah);
  std::printf("%-38s %10.3f\n", "EEPROM Read Data (16B)", m.eeprom_read_16b_nah);
  std::printf("%-38s %10.3f\n", "EEPROM Write Data (16B)", m.eeprom_write_16b_nah);

  std::cout << "\n--- applied to one 5x5 / 2-segment MNP dissemination ---\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.set_program_segments(2);
  cfg.seed = 1;
  const auto r = harness::run_experiment(cfg);
  double tx = 0, rx = 0, idle = 0;
  for (const auto& n : r.nodes) {
    tx += static_cast<double>(n.tx_total) * m.tx_packet_nah;
    rx += static_cast<double>(n.rx_total) * m.rx_packet_nah;
    idle += m.idle_cost_nah(n.active_radio);
  }
  const double total = r.total_energy_nah();
  std::printf("\n%-28s %14s %8s\n", "component", "nAh", "share");
  std::printf("%-28s %14.0f %7.1f%%\n", "transmissions", tx, 100 * tx / total);
  std::printf("%-28s %14.0f %7.1f%%\n", "receptions", rx, 100 * rx / total);
  std::printf("%-28s %14.0f %7.1f%%\n", "idle listening", idle, 100 * idle / total);
  std::printf("%-28s %14.0f %7.1f%%\n", "EEPROM (rest)",
              total - tx - rx - idle, 100 * (total - tx - rx - idle) / total);
  std::printf("%-28s %14.0f\n", "total", total);
  std::cout << "\npaper's point reproduced: idle listening dominates when the\n"
               "radio stays on; MNP attacks exactly this term by sleeping.\n";
  return 0;
}

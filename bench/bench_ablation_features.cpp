// Ablation bench: the design choices section 3 argues for, each toggled
// off on the same 10x10 / 3-segment workload.
//
//   - sender selection's hidden-terminal defence (overheard-request echo)
//     cannot be disabled separately here, but its observable — bulk-sender
//     overlaps — is reported for every variant;
//   - pipelining on/off (section 3.1.2 vs 3.1.1);
//   - query/update phase on/off (section 3.3);
//   - quiescent napping on/off (radio duty cycling between advertisements).
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

namespace {

struct Variant {
  const char* name;
  void (*tweak)(mnp::core::MnpConfig&);
};

}  // namespace

int main() {
  using namespace mnp;
  std::cout << "=== Ablation: MNP feature toggles, 10x10 grid, 3 segments ===\n\n";
  const Variant variants[] = {
      {"full MNP", [](core::MnpConfig&) {}},
      {"no pipelining", [](core::MnpConfig& c) { c.pipelining = false; }},
      {"no query/update", [](core::MnpConfig& c) { c.query_update_enabled = false; }},
      {"no napping", [](core::MnpConfig& c) { c.nap_between_advertisements = false; }},
      {"no adv backoff",
       [](core::MnpConfig& c) { c.adv_interval_cap = c.adv_interval_max; }},
  };
  std::printf("%-18s %14s %10s %12s %12s %10s\n", "variant", "completion(s)",
              "ART(s)", "msgs/node", "overlaps", "complete");
  for (const Variant& v : variants) {
    harness::ExperimentConfig cfg;
    cfg.rows = 10;
    cfg.cols = 10;
    cfg.set_program_segments(3);
    cfg.seed = 41;
    cfg.max_sim_time = sim::hours(4);
    v.tweak(cfg.mnp);
    const auto r = harness::run_experiment(cfg);
    std::printf("%-18s %14.1f %10.1f %12.1f %12llu %9zu%%\n", v.name,
                sim::to_seconds(r.completion_time), r.avg_active_radio_s(),
                r.avg_messages_sent(),
                static_cast<unsigned long long>(r.bulk_overlaps),
                100 * r.completed_count / r.nodes.size());
  }
  std::cout << "\nexpectations: no-pipelining slows completion on multihop\n"
               "grids; no-query/update costs extra full re-request rounds;\n"
               "no-napping inflates ART; no-adv-backoff inflates msgs/node.\n";
  return 0;
}

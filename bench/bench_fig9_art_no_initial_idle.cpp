// Fig. 9: active radio time excluding the initial idle-listening period
// (everything before the node's first heard advertisement). The paper's
// point: with an S-MAC/SS-TDMA-style wakeup scheme the pre-wave idling
// would vanish, and what remains is far more uniform across the network.
#include <iomanip>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 9: ART without initial idle listening, 20x20, 5 segments ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.set_program_segments(5);
  cfg.seed = 8;
  harness::Observation observation;
  const auto r = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

  util::RunningStats total, post_adv;
  std::cout << "ART after first advertisement, by node id (s):\n";
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const double art = sim::to_seconds(r.nodes[i].active_radio);
    const double post = sim::to_seconds(r.nodes[i].active_radio_after_first_adv);
    total.add(art);
    post_adv.add(post);
    std::cout << std::setw(7) << std::fixed << std::setprecision(1) << post;
    if ((i + 1) % r.cols == 0) std::cout << "\n";
  }
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\n            |    mean |     min |     max |  stddev\n";
  std::cout << "total ART   | " << std::setw(7) << total.mean() << " | "
            << std::setw(7) << total.min() << " | " << std::setw(7) << total.max()
            << " | " << std::setw(7) << total.stddev() << "\n";
  std::cout << "post-adv ART| " << std::setw(7) << post_adv.mean() << " | "
            << std::setw(7) << post_adv.min() << " | " << std::setw(7)
            << post_adv.max() << " | " << std::setw(7) << post_adv.stddev()
            << "\n";
  std::cout << "\nshape check (paper): removing the initial idle listening\n"
               "makes per-node values much closer to each other (smaller\n"
               "spread relative to the mean) than raw ART.\n";
  const double total_cv = total.stddev() / total.mean();
  const double post_cv = post_adv.stddev() / post_adv.mean();
  std::cout << "coefficient of variation: total " << std::setprecision(2)
            << total_cv << " vs post-adv " << post_cv << "\n";
  return 0;
}

// Fig. 11: transmission and reception distribution by node location,
// 20x20 grid, 5 segments (~14 KB).
//
// Paper shape: the base station transmits the most; nodes near the base
// send more data (they become sources earlier); interior nodes RECEIVE far
// more than edge/corner nodes (more neighbors); average sends stay low.
#include <iomanip>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 11: tx/rx distribution, 20x20 grid, 5 segments ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.set_program_segments(5);
  cfg.seed = 8;
  harness::Observation observation;
  const auto r = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

  harness::print_tx_rx_distribution(std::cout, r);

  // Aggregates the paper calls out.
  std::uint64_t base_tx = r.nodes[0].tx_total;
  double edge_rx = 0, center_rx = 0;
  std::size_t edge_n = 0, center_n = 0;
  std::uint64_t max_tx = 0;
  net::NodeId max_tx_node = 0;
  for (std::size_t row = 0; row < 20; ++row) {
    for (std::size_t col = 0; col < 20; ++col) {
      const auto& n = r.nodes[row * 20 + col];
      if (n.tx_total > max_tx) {
        max_tx = n.tx_total;
        max_tx_node = static_cast<net::NodeId>(row * 20 + col);
      }
      const bool is_edge = row == 0 || col == 0 || row == 19 || col == 19;
      const bool is_center = row >= 7 && row <= 12 && col >= 7 && col <= 12;
      if (is_edge) {
        edge_rx += static_cast<double>(n.rx_total);
        ++edge_n;
      } else if (is_center) {
        center_rx += static_cast<double>(n.rx_total);
        ++center_n;
      }
    }
  }
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\navg messages sent per node: " << r.avg_messages_sent()
            << " (paper: low, ~100 for the same workload)\n";
  std::cout << "base station tx: " << base_tx << "; network max tx: " << max_tx
            << " at node " << max_tx_node
            << " (paper: the base sends the most)\n";
  std::cout << "center avg rx: " << center_rx / static_cast<double>(center_n)
            << "; edge avg rx: " << edge_rx / static_cast<double>(edge_n)
            << " (paper: center >> edge)\n";
  return 0;
}

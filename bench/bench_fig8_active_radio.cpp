// Fig. 8: active radio time of nodes in a 20x20 network disseminating a
// 5-segment (~14 KB) program — per-node values, the location heat map,
// and the center-vs-edge contrast the paper highlights.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 8: active radio time, 20x20 grid, 5 segments (~14 KB) ===\n\n";
  harness::ExperimentConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.set_program_segments(5);
  cfg.base = 0;  // corner base station, as in the simulation section
  cfg.seed = 8;
  harness::Observation observation;
  const auto r = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

  harness::print_summary(std::cout, "MNP 20x20 / 5 segments", r);
  std::cout << "\n";
  harness::print_active_radio(std::cout, r);

  // Paper's observation: center nodes are active roughly half as long as
  // edge/corner nodes (they hear more traffic, finish earlier, sleep more).
  double center = 0, edge = 0;
  std::size_t center_n = 0, edge_n = 0;
  for (std::size_t row = 0; row < 20; ++row) {
    for (std::size_t col = 0; col < 20; ++col) {
      const double art = sim::to_seconds(r.nodes[row * 20 + col].active_radio);
      const bool is_edge = row == 0 || col == 0 || row == 19 || col == 19;
      const bool is_center = row >= 7 && row <= 12 && col >= 7 && col <= 12;
      if (is_edge) {
        edge += art;
        ++edge_n;
      } else if (is_center) {
        center += art;
        ++center_n;
      }
    }
  }
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\ncenter-region avg ART: " << center / static_cast<double>(center_n)
            << " s; edge-region avg ART: " << edge / static_cast<double>(edge_n)
            << " s (paper: center ~= half of edge)\n";
  std::cout << "completion time: " << sim::format_time(r.completion_time)
            << "; avg ART / completion = "
            << 100.0 * r.avg_active_radio_s() / sim::to_seconds(r.completion_time)
            << "%\n";
  return 0;
}

// Fig. 6: outdoor experiment — 49 motes in a 7x7 grid on a grass field,
// full power vs power level 10, 200-packet program, basic MNP.
//
// Substitution: power level -> range in feet (full ~ 20 ft, level 10
// ~ 10 ft at 3 ft spacing outdoors).
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 6: outdoor 7x7 grid, basic MNP ===\n\n";
  struct Setting {
    const char* label;
    double range_ft;
  };
  for (const Setting s : {Setting{"full power", 20.0},
                          Setting{"power level 10", 10.0}}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 7;
    cfg.cols = 7;
    cfg.spacing_ft = 3.0;
    cfg.range_ft = s.range_ft;
    cfg.base = 0;
    cfg.mnp.pipelining = false;
    cfg.mnp.packets_per_segment = 200;  // one large EEPROM-tracked segment
    cfg.program_bytes = 200 * 22;
    cfg.seed = 21;
    harness::Observation observation;
    const auto r = harness::run_experiment(
        cfg, obs_cli.enabled() ? &observation : nullptr);
    if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

    std::cout << "---- " << s.label << " ----\n";
    harness::print_summary(std::cout, s.label, r);
    harness::print_parent_map(std::cout, r, cfg.base);
    harness::print_sender_order(std::cout, r);
    std::cout << "\n";
  }
  std::cout << "shape check (paper): senders farther from the base are\n"
               "preferred (they cover more uncovered nodes); lower power =>\n"
               "more senders with smaller follower groups; no two nearby\n"
               "nodes transmit code simultaneously.\n";
  return 0;
}

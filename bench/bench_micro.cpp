// Micro-benchmarks of the simulator substrate (google-benchmark): event
// scheduler throughput, bitmap operations, channel delivery fan-out, and
// a whole small dissemination as a macro sanity number.
#include <benchmark/benchmark.h>

#include <memory>

#include "harness/experiment.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/radio.hpp"
#include "sim/scheduler.hpp"
#include "util/bitmap.hpp"

namespace {

using namespace mnp;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(static_cast<sim::Time>(i % 997), [&sum, i] { sum += i; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerCancelledTombstones(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(s.schedule_at(static_cast<sim::Time>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    s.run_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelledTombstones)->Arg(16384);

void BM_BitmapUnionCount(benchmark::State& state) {
  util::Bitmap a = util::Bitmap::all_set(128);
  util::Bitmap b(128);
  for (std::size_t i = 0; i < 128; i += 3) b.set(i);
  for (auto _ : state) {
    util::Bitmap c = a;
    c |= b;
    benchmark::DoNotOptimize(c.count());
    benchmark::DoNotOptimize(c.find_first_set(64));
  }
}
BENCHMARK(BM_BitmapUnionCount);

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim(1);
  net::Topology topo = net::Topology::grid(n, n, 10.0);
  net::DiskLinkModel links(topo, 25.0);
  net::Channel channel(sim, topo, links);
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters;
  std::vector<std::unique_ptr<net::Radio>> radios;
  for (std::size_t i = 0; i < n * n; ++i) {
    meters.push_back(std::make_unique<energy::EnergyMeter>());
    radios.push_back(std::make_unique<net::Radio>(
        static_cast<net::NodeId>(i), sim.scheduler(), channel, *meters[i]));
    channel.register_radio(*radios[i]);
    radios[i]->turn_on();
  }
  net::Packet pkt;
  net::DataMsg d;
  d.payload.assign(22, 1);
  pkt.payload = std::move(d);
  const net::NodeId center = static_cast<net::NodeId>(n * n / 2);
  for (auto _ : state) {
    radios[center]->start_transmission(pkt);
    sim.run_until(sim.now() + sim::sec(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelBroadcastFanout)->Arg(10)->Arg(20);

void BM_EndToEndSmallDissemination(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.set_program_segments(1);
    cfg.seed = 5;
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completion_time);
  }
}
BENCHMARK(BM_EndToEndSmallDissemination)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks of the simulator substrate (google-benchmark): event
// scheduler throughput (including cancel-heavy churn), bitmap operations,
// channel delivery fan-out with and without the neighbor cache, and whole
// disseminations (small and 30x30 large-grid) as macro sanity numbers.
//
// Beyond the google-benchmark suite, `bench_micro --perf-json[=DIR]` runs
// a deterministic perf-tracking harness instead and writes machine-
// readable BENCH_channel.json (cached vs. brute-force channel hot path on
// a 30x30 grid), BENCH_packet.json (shared-frame vs. per-receiver-copy
// delivery plus end-to-end 30x30 numbers and the pool's allocation
// counters) and BENCH_sweep.json (run_sweep jobs=1 vs. jobs=2/4 plus the
// bit-identical-stats check). Those files are committed so the perf
// trajectory is visible across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "energy/energy_meter.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/event_log.hpp"
#include "util/bitmap.hpp"

namespace {

using namespace mnp;

// --- shared channel fixture ------------------------------------------------

/// A rows x rows grid with every radio listening; link model, cache mode
/// and copy mode are configurable so fast and reference paths time the
/// exact same workload. `range` widens the disk radius (denser fan-out).
struct ChannelStack {
  ChannelStack(std::size_t rows, bool neighbor_cache, bool empirical,
               bool zero_copy = true, double range = 25.0)
      : sim(1), topo(net::Topology::grid(rows, rows, 10.0)) {
    if (empirical) {
      net::EmpiricalLinkModel::Params lp;
      links = std::make_unique<net::EmpiricalLinkModel>(topo, lp,
                                                        sim.fork_rng(0x11A7ULL));
    } else {
      links = std::make_unique<net::DiskLinkModel>(topo, range);
    }
    net::Channel::Params cp;
    cp.neighbor_cache = neighbor_cache;
    cp.zero_copy = zero_copy;
    channel = std::make_unique<net::Channel>(sim, topo, *links, cp);
    const std::size_t n = rows * rows;
    for (std::size_t i = 0; i < n; ++i) {
      meters.push_back(std::make_unique<energy::EnergyMeter>());
      radios.push_back(std::make_unique<net::Radio>(
          static_cast<net::NodeId>(i), sim.scheduler(), *channel, *meters[i]));
      channel->register_radio(*radios[i]);
      radios[i]->turn_on();
    }
  }

  void broadcast_from(net::NodeId src, const net::Packet& pkt) {
    radios[src]->start_transmission(pkt);
    sim.run_until(sim.now() + sim::sec(1));
  }

  sim::Simulator sim;
  net::Topology topo;
  std::unique_ptr<net::LinkModel> links;
  std::unique_ptr<net::Channel> channel;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters;
  std::vector<std::unique_ptr<net::Radio>> radios;
};

net::Packet data_packet() {
  net::Packet pkt;
  net::DataMsg d;
  d.payload.assign(22, 1);
  pkt.payload = std::move(d);
  return pkt;
}

// --- scheduler -------------------------------------------------------------

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(static_cast<sim::Time>(i % 997), [&sum, i] { sum += i; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerPostRun(benchmark::State& state) {
  // The fire-and-forget fast path: no cancellation slot bookkeeping.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.post_at(static_cast<sim::Time>(i % 997), [&sum, i] { sum += i; });
    }
    s.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerPostRun)->Arg(16384);

void BM_SchedulerCancelledTombstones(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(s.schedule_at(static_cast<sim::Time>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    s.run_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelledTombstones)->Arg(16384);

void BM_SchedulerCancelHeavyChurn(benchmark::State& state) {
  // MNP cancels most of the timers it arms (backoffs superseded by carrier
  // events, reply timers satisfied early). Model that churn: repeatedly arm
  // a batch of timers, cancel 90% of them, and let the rest fire. The slot
  // free-list + tombstone compaction must keep this allocation-free and
  // O(live), not O(ever-cancelled).
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    std::vector<sim::EventHandle> handles;
    handles.reserve(batch);
    for (int round = 0; round < 10; ++round) {
      handles.clear();
      for (std::size_t i = 0; i < batch; ++i) {
        handles.push_back(
            s.schedule_after(static_cast<sim::Time>(1 + i % 50), [] {}));
      }
      for (std::size_t i = 0; i < batch; ++i) {
        if (i % 10 != 0) handles[i].cancel();
      }
      s.run_until(s.now() + 100);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) * 10);
}
BENCHMARK(BM_SchedulerCancelHeavyChurn)->Arg(1024)->Arg(8192);

// --- util ------------------------------------------------------------------

void BM_BitmapUnionCount(benchmark::State& state) {
  util::Bitmap a = util::Bitmap::all_set(128);
  util::Bitmap b(128);
  for (std::size_t i = 0; i < 128; i += 3) b.set(i);
  for (auto _ : state) {
    util::Bitmap c = a;
    c |= b;
    benchmark::DoNotOptimize(c.count());
    benchmark::DoNotOptimize(c.find_first_set(64));
  }
}
BENCHMARK(BM_BitmapUnionCount);

void BM_EventLogRecord(benchmark::State& state) {
  // Steady-state trace recording: the ring is at capacity, so every record
  // is an overwrite — no allocation, no string construction.
  trace::EventLog log(4096);
  std::uint64_t i = 0;
  for (auto _ : state) {
    log.record(static_cast<sim::Time>(i), 3, trace::EventKind::kPacketSent,
               std::string_view("Data"));
    log.record(static_cast<sim::Time>(i), 3,
               trace::EventKind::kSegmentCompleted, i % 5);
    ++i;
  }
  benchmark::DoNotOptimize(log.dropped());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_EventLogRecord);

// --- channel ---------------------------------------------------------------

void channel_broadcast_bench(benchmark::State& state, bool cached) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  ChannelStack stack(rows, cached, /*empirical=*/false);
  const net::Packet pkt = data_packet();
  const net::NodeId center = static_cast<net::NodeId>(rows * rows / 2);
  for (auto _ : state) {
    stack.broadcast_from(center, pkt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  channel_broadcast_bench(state, /*cached=*/true);
}
BENCHMARK(BM_ChannelBroadcastFanout)->Arg(10)->Arg(20)->Arg(30);

void BM_ChannelBroadcastBruteForce(benchmark::State& state) {
  // The pre-neighbor-cache reference path, for speedup bookkeeping.
  channel_broadcast_bench(state, /*cached=*/false);
}
BENCHMARK(BM_ChannelBroadcastBruteForce)->Arg(10)->Arg(20)->Arg(30);

void frame_delivery_bench(benchmark::State& state, bool zero_copy) {
  // Delivery fan-out: one data broadcast heard by ~60 listeners (45 ft
  // disk on a 10 ft grid). Shared mode hands every receiver the same
  // frame; copy mode deep-copies the packet per receiver and allocates a
  // fresh frame per transmission — the pre-flyweight behavior.
  const auto rows = static_cast<std::size_t>(state.range(0));
  ChannelStack stack(rows, /*neighbor_cache=*/true, /*empirical=*/false,
                     zero_copy, /*range=*/45.0);
  const net::Packet pkt = data_packet();
  const net::NodeId center = static_cast<net::NodeId>(rows * rows / 2);
  for (auto _ : state) {
    stack.broadcast_from(center, pkt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FrameDeliveryShared(benchmark::State& state) {
  frame_delivery_bench(state, /*zero_copy=*/true);
}
BENCHMARK(BM_FrameDeliveryShared)->Arg(30);

void BM_FrameDeliveryCopy(benchmark::State& state) {
  frame_delivery_bench(state, /*zero_copy=*/false);
}
BENCHMARK(BM_FrameDeliveryCopy)->Arg(30);

// --- end-to-end ------------------------------------------------------------

void BM_EndToEndSmallDissemination(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.set_program_segments(1);
    cfg.seed = 5;
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completion_time);
  }
}
BENCHMARK(BM_EndToEndSmallDissemination)->Unit(benchmark::kMillisecond);

void BM_EndToEndLargeGrid(benchmark::State& state) {
  // 30x30 (beyond the paper's 20x20 TOSSIM runs), one segment: the number
  // that tracks whether the simulator scales to production-size grids.
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.rows = 30;
    cfg.cols = 30;
    cfg.set_program_segments(1);
    cfg.seed = 5;
    const auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completion_time);
  }
}
BENCHMARK(BM_EndToEndLargeGrid)->Unit(benchmark::kMillisecond)->Iterations(1);

// --- perf-tracking JSON mode ----------------------------------------------

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Times `packets` center broadcasts on a rows x rows empirical-links grid.
double time_channel_broadcasts(std::size_t rows, int packets, bool cached) {
  ChannelStack stack(rows, cached, /*empirical=*/true);
  const net::Packet pkt = data_packet();
  const net::NodeId center = static_cast<net::NodeId>(rows * rows / 2);
  stack.broadcast_from(center, pkt);  // warmup: materializes the cache
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < packets; ++i) stack.broadcast_from(center, pkt);
  return ms_since(start);
}

struct DeliveryTiming {
  double ms = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t node_allocs = 0;
  std::uint64_t payload_allocs = 0;
};

/// Times `packets` dense broadcasts (45 ft disk => ~60 listeners each) on
/// a rows x rows grid, in shared-frame or per-receiver-copy mode.
DeliveryTiming time_frame_deliveries(std::size_t rows, int packets,
                                     bool zero_copy) {
  ChannelStack stack(rows, /*neighbor_cache=*/true, /*empirical=*/false,
                     zero_copy, /*range=*/45.0);
  const net::Packet pkt = data_packet();
  const net::NodeId center = static_cast<net::NodeId>(rows * rows / 2);
  stack.broadcast_from(center, pkt);  // warmup: fills neighbor cache + pool
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < packets; ++i) stack.broadcast_from(center, pkt);
  DeliveryTiming t;
  t.ms = ms_since(start);
  t.deliveries = stack.channel->deliveries();
  t.node_allocs = stack.channel->frame_pool().node_allocations();
  t.payload_allocs = stack.channel->frame_pool().payload_allocations();
  return t;
}

/// Wall-clock of one full 30x30 MNP dissemination, shared or copy mode.
double time_end_to_end(bool zero_copy) {
  harness::ExperimentConfig cfg;
  cfg.rows = 30;
  cfg.cols = 30;
  cfg.set_program_segments(1);
  cfg.seed = 5;
  cfg.channel.zero_copy = zero_copy;
  const auto start = std::chrono::steady_clock::now();
  const auto r = harness::run_experiment(cfg);
  if (!r.all_completed) {
    std::fprintf(stderr, "perf-json: 30x30 dissemination did not complete\n");
  }
  return ms_since(start);
}

struct SweepTiming {
  double ms = 0.0;
  harness::SweepResult result;
};

SweepTiming time_sweep(std::size_t jobs) {
  harness::ExperimentConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  harness::SweepOptions options;
  options.jobs = jobs;
  SweepTiming t;
  const auto start = std::chrono::steady_clock::now();
  t.result = harness::run_sweep(cfg, 8, /*first_seed=*/1, options);
  t.ms = ms_since(start);
  return t;
}

bool stats_identical(const harness::SweepResult& a,
                     const harness::SweepResult& b) {
  return a.fully_completed_runs == b.fully_completed_runs &&
         a.completion_s.sum() == b.completion_s.sum() &&
         a.avg_msgs.sum() == b.avg_msgs.sum() &&
         a.collisions.sum() == b.collisions.sum() &&
         a.energy_per_node_nah.sum() == b.energy_per_node_nah.sum();
}

int run_perf_json(const std::string& dir) {
  const std::size_t rows = 30;
  const int packets = 400;
  std::printf("perf-json: timing channel broadcasts on a %zux%zu grid...\n",
              rows, rows);
  const double cached_ms = time_channel_broadcasts(rows, packets, true);
  const double brute_ms = time_channel_broadcasts(rows, packets, false);
  const double channel_speedup = cached_ms > 0.0 ? brute_ms / cached_ms : 0.0;
  {
    const std::string path = dir + "/BENCH_channel.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"channel_broadcast\",\n"
                 "  \"grid\": \"%zux%zu\",\n"
                 "  \"links\": \"empirical\",\n"
                 "  \"packets\": %d,\n"
                 "  \"neighbor_cache_ms\": %.3f,\n"
                 "  \"brute_force_ms\": %.3f,\n"
                 "  \"speedup\": %.2f\n"
                 "}\n",
                 rows, rows, packets, cached_ms, brute_ms, channel_speedup);
    std::fclose(f);
    std::printf("perf-json: %s (speedup %.2fx)\n", path.c_str(),
                channel_speedup);
  }

  std::printf("perf-json: timing shared vs. copy delivery on a %zux%zu grid...\n",
              rows, rows);
  const int delivery_packets = 2000;
  const DeliveryTiming shared =
      time_frame_deliveries(rows, delivery_packets, true);
  const DeliveryTiming copied =
      time_frame_deliveries(rows, delivery_packets, false);
  const double delivery_speedup = shared.ms > 0.0 ? copied.ms / shared.ms : 0.0;
  std::printf("perf-json: timing end-to-end 30x30 shared vs. copy...\n");
  // One warmup then min-of-two per mode, interleaved: the first 30x30 run
  // in a process pays cold allocator/link-cache costs that would otherwise
  // bias whichever mode goes first.
  time_end_to_end(true);
  double e2e_shared_ms = 1e300;
  double e2e_copy_ms = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    e2e_copy_ms = std::min(e2e_copy_ms, time_end_to_end(false));
    e2e_shared_ms = std::min(e2e_shared_ms, time_end_to_end(true));
  }
  {
    const std::string path = dir + "/BENCH_packet.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"packet_path\",\n"
                 "  \"grid\": \"%zux%zu\",\n"
                 "  \"delivery_packets\": %d,\n"
                 "  \"deliveries_per_packet\": %.1f,\n"
                 "  \"shared_delivery_ms\": %.3f,\n"
                 "  \"copy_delivery_ms\": %.3f,\n"
                 "  \"delivery_speedup\": %.2f,\n"
                 "  \"shared_node_allocations\": %llu,\n"
                 "  \"copy_node_allocations\": %llu,\n"
                 "  \"end_to_end_shared_ms\": %.3f,\n"
                 "  \"end_to_end_copy_ms\": %.3f,\n"
                 "  \"end_to_end_speedup\": %.2f\n"
                 "}\n",
                 rows, rows, delivery_packets,
                 static_cast<double>(shared.deliveries) /
                     (delivery_packets + 1),
                 shared.ms, copied.ms, delivery_speedup,
                 static_cast<unsigned long long>(shared.node_allocs),
                 static_cast<unsigned long long>(copied.node_allocs),
                 e2e_shared_ms, e2e_copy_ms,
                 e2e_shared_ms > 0.0 ? e2e_copy_ms / e2e_shared_ms : 0.0);
    std::fclose(f);
    std::printf(
        "perf-json: %s (delivery %.2fx, end-to-end %.2fx, shared allocs "
        "%llu)\n",
        path.c_str(), delivery_speedup,
        e2e_shared_ms > 0.0 ? e2e_copy_ms / e2e_shared_ms : 0.0,
        static_cast<unsigned long long>(shared.node_allocs));
  }

  std::printf("perf-json: timing 8-seed sweep at jobs=1/2/4...\n");
  const SweepTiming j1 = time_sweep(1);
  const SweepTiming j2 = time_sweep(2);
  const SweepTiming j4 = time_sweep(4);
  const bool identical =
      stats_identical(j1.result, j2.result) && stats_identical(j1.result, j4.result);
  {
    const std::string path = dir + "/BENCH_sweep.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t hw_clamp = hw ? hw : 1;
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"parallel_sweep\",\n"
                 "  \"config\": \"MNP 6x6 grid, 1 segment, 8 seeds\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"effective_jobs2\": %zu,\n"
                 "  \"effective_jobs4\": %zu,\n"
                 "  \"jobs1_ms\": %.3f,\n"
                 "  \"jobs2_ms\": %.3f,\n"
                 "  \"jobs4_ms\": %.3f,\n"
                 "  \"speedup_jobs2\": %.2f,\n"
                 "  \"speedup_jobs4\": %.2f,\n"
                 "  \"stats_bit_identical\": %s\n"
                 "}\n",
                 hw, harness::effective_sweep_jobs(2, 8, hw_clamp, false),
                 harness::effective_sweep_jobs(4, 8, hw_clamp, false),
                 j1.ms, j2.ms, j4.ms,
                 j2.ms > 0.0 ? j1.ms / j2.ms : 0.0,
                 j4.ms > 0.0 ? j1.ms / j4.ms : 0.0,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("perf-json: %s (jobs=4 speedup %.2fx, identical=%s)\n",
                path.c_str(), j4.ms > 0.0 ? j1.ms / j4.ms : 0.0,
                identical ? "true" : "false");
  }
  if (!identical) {
    std::fprintf(stderr, "perf-json: PARALLEL SWEEP DIVERGED FROM jobs=1\n");
    return 1;
  }
  if (channel_speedup < 3.0) {
    std::fprintf(stderr,
                 "perf-json: channel speedup %.2fx below the 3x target\n",
                 channel_speedup);
    return 1;
  }
  if (delivery_speedup < 2.0) {
    std::fprintf(stderr,
                 "perf-json: delivery speedup %.2fx below the 2x target\n",
                 delivery_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--perf-json", 11)) {
      const char* eq = std::strchr(argv[i], '=');
      return run_perf_json(eq ? eq + 1 : ".");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

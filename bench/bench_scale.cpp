// Scale benchmark for the channel hot path (DESIGN.md section 11): drives
// raw channel traffic — no protocol above it — on uniform-random fields of
// 1k/10k/100k nodes at constant density, static and mobile, and reports
// events/sec plus peak RSS per case. Each case runs in a forked child so
// VmHWM measures that case alone.
//
// `bench_scale --perf-json[=DIR]` writes machine-readable BENCH_scale.json
// (committed, so the scale trajectory is visible across PRs), including
// the mobile-10k throughput ratio of the spatial-grid path over the
// pre-grid eager cache and whether the 100k static case completed.
// `bench_scale --smoke` is the CI entry: one bounded 10k mobile case under
// whatever sanitizer the build carries, asserting the incremental-repair
// machinery actually engaged.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "energy/energy_meter.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/radio.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mnp;

// Constant density: ~12 expected nodes inside the 37.5 ft interference
// disc (25 ft disk range x 1.5 interference factor), independent of n.
constexpr double kRangeFt = 25.0;
constexpr double kInterference = 1.5;
constexpr double kDensityPerSqFt =
    12.0 / (3.14159265358979323846 * 37.5 * 37.5);

struct CaseSpec {
  std::size_t nodes = 0;
  bool mobile = false;
  bool grid = true;  // false: the pre-grid eager cache (reference path)
  int bursts = 0;
  std::uint64_t seed = 1;
};

struct CaseStats {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t cache_repairs = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t grid_cells = 0;
  std::uint64_t grid_max_occupancy = 0;
  long vm_hwm_kb = -1;
  int completed = 0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

net::Packet data_packet() {
  net::Packet pkt;
  net::DataMsg d;
  d.payload.assign(22, 1);
  pkt.payload = std::move(d);
  return pkt;
}

CaseStats run_case_inproc(const CaseSpec& spec) {
  const double extent =
      std::sqrt(static_cast<double>(spec.nodes) / kDensityPerSqFt);
  sim::Simulator sim(spec.seed);
  sim::Rng place(1234 + spec.seed);
  net::Topology topo;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    topo.add({place.uniform_real(0.0, extent), place.uniform_real(0.0, extent)});
  }
  net::DiskLinkModel links(topo, kRangeFt, kInterference);
  net::Channel::Params cp;
  cp.grid_index = spec.grid;
  net::Channel channel(sim, topo, links, cp);
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters;
  std::vector<std::unique_ptr<net::Radio>> radios;
  meters.reserve(spec.nodes);
  radios.reserve(spec.nodes);
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    meters.push_back(std::make_unique<energy::EnergyMeter>());
    radios.push_back(std::make_unique<net::Radio>(
        static_cast<net::NodeId>(i), sim.scheduler(), channel, *meters[i]));
    channel.register_radio(*radios[i]);
    radios[i]->turn_on();
  }

  // Traffic: every 100 ms, 8 scattered sources broadcast one data packet
  // (staggered inside the burst so transmissions overlap and the
  // cross-corruption loops run). Mobile cases additionally teleport 1% of
  // the nodes per burst — the same Topology::set_position churn the
  // scenario engine's waypoint interpolation produces.
  sim::Rng traffic(4242 + spec.seed);
  const net::Packet pkt = data_packet();
  const auto n64 = static_cast<std::int64_t>(spec.nodes);
  net::Topology* topo_ptr = &topo;
  const std::size_t movers =
      std::max<std::size_t>(1, spec.nodes / 100);
  for (int burst = 0; burst < spec.bursts; ++burst) {
    const auto t0 = static_cast<sim::Time>(burst) * 100000;
    for (int k = 0; k < 8; ++k) {
      const auto src = static_cast<net::NodeId>(traffic.uniform_int(0, n64 - 1));
      net::Radio* radio = radios[src].get();
      sim.scheduler().schedule_at(t0 + static_cast<sim::Time>(k) * 500,
                                  [radio, pkt] {
                                    net::Packet copy = pkt;
                                    radio->start_transmission(std::move(copy));
                                  });
    }
    if (spec.mobile) {
      std::vector<std::pair<net::NodeId, net::Position>> hops;
      hops.reserve(movers);
      for (std::size_t m = 0; m < movers; ++m) {
        hops.emplace_back(
            static_cast<net::NodeId>(traffic.uniform_int(0, n64 - 1)),
            net::Position{traffic.uniform_real(0.0, extent),
                          traffic.uniform_real(0.0, extent)});
      }
      sim.scheduler().schedule_at(t0 + 50000, [topo_ptr, hops] {
        for (const auto& [id, to] : hops) topo_ptr->set_position(id, to);
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(static_cast<sim::Time>(spec.bursts) * 100000 + 1000000);
  CaseStats s;
  s.wall_ms = ms_since(start);
  s.events = sim.scheduler().executed_events();
  s.transmissions = channel.transmissions();
  s.deliveries = channel.deliveries();
  s.collisions = channel.collisions();
  s.cache_repairs = channel.cache_repairs();
  s.cache_invalidations = channel.cache_invalidations();
  s.grid_cells = channel.grid_cells();
  s.grid_max_occupancy = channel.grid_max_occupancy();
  // "Completed" = the event loop drained the whole schedule and traffic
  // actually flowed. A case that dies (OOM) never returns at all — the
  // fork protocol in run_case reports that as a failure.
  s.completed = channel.transmissions() > 0 ? 1 : 0;
  return s;
}

long read_vm_hwm_kb() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f)) {
    if (!std::strncmp(line, "VmHWM:", 6)) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return -1;
#endif
}

/// Runs the case in a forked child so VmHWM is this case's own high-water
/// mark, not the max over every case the process ran before it.
CaseStats run_case(const CaseSpec& spec) {
#ifdef __linux__
  int fds[2];
  if (pipe(fds) == 0) {
    const pid_t pid = fork();
    if (pid == 0) {
      close(fds[0]);
      CaseStats s = run_case_inproc(spec);
      s.vm_hwm_kb = read_vm_hwm_kb();
      ssize_t written = 0;
      const char* p = reinterpret_cast<const char*>(&s);
      while (written < static_cast<ssize_t>(sizeof s)) {
        const ssize_t w = write(fds[1], p + written, sizeof(s) - written);
        if (w <= 0) break;
        written += w;
      }
      close(fds[1]);
      _exit(0);
    }
    if (pid > 0) {
      close(fds[1]);
      CaseStats s;
      char* p = reinterpret_cast<char*>(&s);
      ssize_t got = 0;
      while (got < static_cast<ssize_t>(sizeof s)) {
        const ssize_t r = read(fds[0], p + got, sizeof(s) - got);
        if (r <= 0) break;
        got += r;
      }
      close(fds[0]);
      int status = 0;
      waitpid(pid, &status, 0);
      if (got == static_cast<ssize_t>(sizeof s) && WIFEXITED(status) &&
          WEXITSTATUS(status) == 0) {
        return s;
      }
      std::fprintf(stderr, "bench_scale: forked case failed, rerunning inline\n");
    } else {
      close(fds[0]);
      close(fds[1]);
    }
  }
#endif
  return run_case_inproc(spec);
}

const char* mode_name(const CaseSpec& s) { return s.mobile ? "mobile" : "static"; }
const char* path_name(const CaseSpec& s) { return s.grid ? "grid" : "eager"; }

void print_case(const CaseSpec& spec, const CaseStats& s) {
  std::printf(
      "%7zu nodes  %-6s %-5s  %8.1f ms  %10.0f events/s  rss %6.1f MB  "
      "tx %llu del %llu repairs %llu inval %llu\n",
      spec.nodes, mode_name(spec), path_name(spec), s.wall_ms,
      s.wall_ms > 0.0 ? static_cast<double>(s.events) / (s.wall_ms / 1000.0)
                      : 0.0,
      static_cast<double>(s.vm_hwm_kb) / 1024.0,
      static_cast<unsigned long long>(s.transmissions),
      static_cast<unsigned long long>(s.deliveries),
      static_cast<unsigned long long>(s.cache_repairs),
      static_cast<unsigned long long>(s.cache_invalidations));
}

double events_per_sec(const CaseStats& s) {
  return s.wall_ms > 0.0
             ? static_cast<double>(s.events) / (s.wall_ms / 1000.0)
             : 0.0;
}

void write_case_json(std::FILE* f, const CaseSpec& spec, const CaseStats& s,
                     bool last) {
  std::fprintf(
      f,
      "    {\"nodes\": %zu, \"mode\": \"%s\", \"path\": \"%s\", "
      "\"bursts\": %d, \"wall_ms\": %.1f, \"events\": %llu, "
      "\"events_per_sec\": %.0f, \"peak_rss_mb\": %.1f, "
      "\"transmissions\": %llu, \"deliveries\": %llu, "
      "\"cache_repairs\": %llu, \"cache_invalidations\": %llu, "
      "\"grid_cells\": %llu, \"grid_max_occupancy\": %llu, "
      "\"completed\": %s}%s\n",
      spec.nodes, mode_name(spec), path_name(spec), spec.bursts, s.wall_ms,
      static_cast<unsigned long long>(s.events), events_per_sec(s),
      static_cast<double>(s.vm_hwm_kb) / 1024.0,
      static_cast<unsigned long long>(s.transmissions),
      static_cast<unsigned long long>(s.deliveries),
      static_cast<unsigned long long>(s.cache_repairs),
      static_cast<unsigned long long>(s.cache_invalidations),
      static_cast<unsigned long long>(s.grid_cells),
      static_cast<unsigned long long>(s.grid_max_occupancy),
      s.completed ? "true" : "false", last ? "" : ",");
}

int run_perf_json(const std::string& dir) {
  // Same (nodes, mode) workload for grid and eager wherever both run, so
  // the events/sec ratios compare identical work. Eager is skipped at 100k:
  // one O(N^2) build is 1e10 link-model probes — the pre-grid design does
  // not finish there, which is the point of this whole exercise.
  const std::vector<CaseSpec> specs = {
      {1000, false, true, 200, 1},   {1000, false, false, 200, 1},
      {1000, true, true, 200, 1},    {1000, true, false, 200, 1},
      {10000, false, true, 100, 1},  {10000, false, false, 100, 1},
      {10000, true, true, 30, 1},    {10000, true, false, 30, 1},
      {100000, false, true, 100, 1}, {100000, true, true, 20, 1},
  };
  std::vector<CaseStats> stats;
  stats.reserve(specs.size());
  for (const CaseSpec& spec : specs) {
    std::printf("bench_scale: %zu nodes %s/%s...\n", spec.nodes,
                mode_name(spec), path_name(spec));
    std::fflush(stdout);
    stats.push_back(run_case(spec));
    print_case(spec, stats.back());
  }

  double grid_mobile_10k = 0.0, eager_mobile_10k = 0.0;
  double rss_100k_mb = 0.0;
  bool completed_100k = false;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].nodes == 10000 && specs[i].mobile) {
      (specs[i].grid ? grid_mobile_10k : eager_mobile_10k) =
          events_per_sec(stats[i]);
    }
    if (specs[i].nodes == 100000 && !specs[i].mobile) {
      completed_100k = stats[i].completed != 0 && stats[i].deliveries > 0;
      rss_100k_mb = static_cast<double>(stats[i].vm_hwm_kb) / 1024.0;
    }
  }
  const double speedup =
      eager_mobile_10k > 0.0 ? grid_mobile_10k / eager_mobile_10k : 0.0;

  const std::string path = dir + "/BENCH_scale.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"scale\",\n"
               "  \"links\": \"disk r=25ft x1.5, ~12 nodes per "
               "interference disc\",\n"
               "  \"workload\": \"8 staggered broadcasts per 100ms burst; "
               "mobile: 1%% of nodes rehomed per burst\",\n"
               "  \"cases\": [\n");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    write_case_json(f, specs[i], stats[i], i + 1 == specs.size());
  }
  std::fprintf(f,
               "  ],\n"
               "  \"mobile_10k_grid_over_eager\": %.1f,\n"
               "  \"static_100k_peak_rss_mb\": %.1f,\n"
               "  \"completed_100k_static\": %s\n"
               "}\n",
               speedup, rss_100k_mb, completed_100k ? "true" : "false");
  std::fclose(f);
  std::printf("bench_scale: %s (mobile 10k speedup %.1fx, 100k static %s)\n",
              path.c_str(), speedup, completed_100k ? "completed" : "FAILED");

  if (!completed_100k) {
    std::fprintf(stderr, "bench_scale: 100k static case did not complete\n");
    return 1;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "bench_scale: mobile 10k speedup %.1fx below the 10x target\n",
                 speedup);
    return 1;
  }
  return 0;
}

int run_smoke() {
  // CI entry (sanitizer-friendly wall budget): one bounded 10k mobile case
  // on the grid path, in-process. Checks that the run produced traffic and
  // that the incremental-repair machinery — not whole-cache discard — is
  // what serviced the mobility churn.
  CaseSpec spec;
  spec.nodes = 10000;
  spec.mobile = true;
  spec.grid = true;
  spec.bursts = 10;
  const CaseStats s = run_case_inproc(spec);
  print_case(spec, s);
  if (s.transmissions == 0 || s.deliveries == 0) {
    std::fprintf(stderr, "bench_scale --smoke: no traffic flowed\n");
    return 1;
  }
  if (s.cache_invalidations == 0 || s.cache_repairs == 0) {
    std::fprintf(stderr,
                 "bench_scale --smoke: incremental repair never engaged\n");
    return 1;
  }
  if (s.grid_cells == 0) {
    std::fprintf(stderr, "bench_scale --smoke: spatial grid never built\n");
    return 1;
  }
  std::printf("bench_scale --smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--perf-json", 11)) {
      const char* eq = std::strchr(argv[i], '=');
      return run_perf_json(eq ? eq + 1 : ".");
    }
    if (!std::strcmp(argv[i], "--smoke")) return run_smoke();
  }
  // Default: the quick human-readable subset.
  for (const CaseSpec& spec : std::vector<CaseSpec>{
           {1000, false, true, 100, 1}, {1000, true, true, 100, 1}}) {
    print_case(spec, run_case(spec));
  }
  return 0;
}

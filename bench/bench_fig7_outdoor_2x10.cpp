// Fig. 7: outdoor experiment — 20 motes in a 2x10 grid (a long strip,
// chosen by the authors to magnify multihop behaviour), full power vs
// power level 10, 200-packet program, basic MNP.
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const harness::ObsCli obs_cli = harness::parse_obs_args(argc, argv);
  std::cout << "=== Fig. 7: outdoor 2x10 grid, basic MNP ===\n\n";
  struct Setting {
    const char* label;
    double range_ft;
  };
  for (const Setting s : {Setting{"full power", 12.0},
                          Setting{"power level 10", 7.0}}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 2;
    cfg.cols = 10;
    cfg.spacing_ft = 3.0;
    cfg.range_ft = s.range_ft;
    cfg.base = 0;
    cfg.mnp.pipelining = false;
    cfg.mnp.packets_per_segment = 200;  // one large EEPROM-tracked segment
    cfg.program_bytes = 200 * 22;
    cfg.seed = 31;
    harness::Observation observation;
    const auto r = harness::run_experiment(
        cfg, obs_cli.enabled() ? &observation : nullptr);
    if (!harness::finish_observation(obs_cli, cfg, observation)) return 1;

    std::cout << "---- " << s.label << " ----\n";
    harness::print_summary(std::cout, s.label, r);
    harness::print_parent_map(std::cout, r, cfg.base);
    harness::print_sender_order(std::cout, r);
    std::cout << "\n";
  }
  std::cout << "shape check (paper): the strip forces a chain of senders\n"
               "marching away from the base; reducing power lengthens the\n"
               "chain.\n";
  return 0;
}

// Extension bench (paper section 6): battery-aware advertising. A node's
// advertisement transmit power is scaled by its remaining battery, so
// drained nodes attract fewer requesters, lose the sender election, and
// are spared the forwarding load.
//
// Setup: 8x8 grid, half of the nodes start at 30% battery (checkerboard).
// We compare how much data each class forwards with the extension off/on.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  std::cout << "=== Battery-aware advertising (paper section 6 extension) ===\n\n";
  std::printf("%-14s %18s %18s %14s %10s\n", "mode", "weak avg data tx",
              "strong avg data tx", "weak/strong", "complete");
  for (bool aware : {false, true}) {
    harness::ExperimentConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.set_program_segments(2);
    cfg.seed = 53;
    cfg.max_sim_time = sim::hours(4);
    cfg.mnp.battery_aware = aware;
    cfg.battery_levels.resize(64, 1.0);
    for (std::size_t row = 0; row < 8; ++row) {
      for (std::size_t col = 0; col < 8; ++col) {
        if ((row + col) % 2 == 1) cfg.battery_levels[row * 8 + col] = 0.3;
      }
    }
    const auto r = harness::run_experiment(cfg);
    double weak = 0, strong = 0;
    std::size_t weak_n = 0, strong_n = 0;
    for (std::size_t i = 1; i < r.nodes.size(); ++i) {  // skip the base
      if (cfg.battery_levels[i] < 1.0) {
        weak += static_cast<double>(r.nodes[i].tx_data);
        ++weak_n;
      } else {
        strong += static_cast<double>(r.nodes[i].tx_data);
        ++strong_n;
      }
    }
    const double weak_avg = weak / static_cast<double>(weak_n);
    const double strong_avg = strong / static_cast<double>(strong_n);
    std::printf("%-14s %18.1f %18.1f %14.2f %9zu%%\n",
                aware ? "battery-aware" : "baseline", weak_avg, strong_avg,
                strong_avg > 0 ? weak_avg / strong_avg : 0.0,
                100 * r.completed_count / r.nodes.size());
  }
  std::cout << "\nexpectation: with the extension on, weak-battery nodes\n"
               "forward a smaller share of the data (weak/strong ratio\n"
               "drops) while the network still fully reprograms.\n";
  return 0;
}

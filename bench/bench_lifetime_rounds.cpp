// Extension bench: network lifetime across repeated reprogramming rounds.
//
// Paper section 6: "a node whose battery level is low (e.g., if it became
// a sender in previous reprogramming) advertises with lower power level
// ... the responsibility of transmitting the code will be evenly divided
// among the sensors." We run several consecutive reprogramming rounds,
// depleting each node's battery by its measured energy use, and compare
// the battery distribution with the extension off and on.
//
// Battery capacity is scaled down so depletion is visible within a few
// rounds (a real AA pack outlives hundreds of reprogrammings).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"
#include "util/histogram.hpp"

int main() {
  using namespace mnp;
  constexpr double kCapacityNah = 4.0e6;  // scaled virtual battery
  constexpr int kRounds = 6;
  std::cout << "=== Repeated reprogramming rounds, 6x6 grid, 2 segments ===\n"
            << "(virtual battery " << kCapacityNah << " nAh per node)\n\n";

  for (bool aware : {false, true}) {
    std::vector<double> battery(36, 1.0);
    std::printf("--- %s ---\n", aware ? "battery-aware" : "baseline");
    std::printf("%-6s %10s %10s %10s %10s\n", "round", "min batt", "avg batt",
                "stddev", "complete");
    for (int round = 1; round <= kRounds; ++round) {
      harness::ExperimentConfig cfg;
      cfg.rows = 6;
      cfg.cols = 6;
      cfg.set_program_segments(2);
      cfg.program_id = static_cast<std::uint16_t>(round);
      cfg.seed = 90 + static_cast<std::uint64_t>(round);
      cfg.max_sim_time = sim::hours(4);
      cfg.mnp.battery_aware = aware;
      cfg.battery_levels = battery;
      const auto r = harness::run_experiment(cfg);
      util::RunningStats stats;
      for (std::size_t i = 0; i < battery.size(); ++i) {
        battery[i] = std::max(0.05, battery[i] - r.nodes[i].energy_nah / kCapacityNah);
        if (i != cfg.base) stats.add(battery[i]);  // base is mains-powered
      }
      std::printf("%-6d %10.3f %10.3f %10.3f %9zu%%\n", round, stats.min(),
                  stats.mean(), stats.stddev(),
                  100 * r.completed_count / r.nodes.size());
    }
    std::printf("\n");
  }
  std::cout << "expectation: battery-aware rounds end with a higher minimum\n"
               "and a tighter spread — the forwarding load rotates onto the\n"
               "healthiest nodes instead of re-draining the same senders.\n";
  return 0;
}

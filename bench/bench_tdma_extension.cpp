// Extension bench (paper conclusion): "One promising option is to combine
// MNP with time scheduling mechanisms such as TDMA, so that each node can
// sleep and wake up at predefined time slots". MNP over the TinyOS CSMA
// MAC vs MNP over an SS-TDMA slotted MAC on the same 10x10 / 2-segment
// workload.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  std::cout << "=== MNP over CSMA vs MNP over SS-TDMA, 10x10 grid ===\n\n";
  std::printf("%-8s %14s %10s %12s %12s %12s %10s\n", "MAC", "completion(s)",
              "ART(s)", "collisions", "overlaps", "msgs/node", "complete");
  for (auto mac : {harness::MacType::kCsma, harness::MacType::kTdma}) {
    harness::ExperimentConfig cfg;
    cfg.mac = mac;
    cfg.rows = 10;
    cfg.cols = 10;
    cfg.set_program_segments(2);
    cfg.seed = 77;
    cfg.max_sim_time = sim::hours(6);
    const auto r = harness::run_experiment(cfg);
    std::printf("%-8s %14.1f %10.1f %12llu %12llu %12.1f %9zu%%\n",
                mac == harness::MacType::kCsma ? "CSMA" : "TDMA",
                sim::to_seconds(r.completion_time), r.avg_active_radio_s(),
                static_cast<unsigned long long>(r.collisions),
                static_cast<unsigned long long>(r.bulk_overlaps),
                r.avg_messages_sent(),
                100 * r.completed_count / r.nodes.size());
  }
  std::cout << "\nexpectation: TDMA eliminates collisions entirely (the slot\n"
               "tiling keeps same-slot transmitters out of interference\n"
               "range of any shared listener) at the price of slot-waiting\n"
               "latency; CSMA is faster but collision-prone.\n";
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/mnp_storage.dir/storage/eeprom.cpp.o"
  "CMakeFiles/mnp_storage.dir/storage/eeprom.cpp.o.d"
  "libmnp_storage.a"
  "libmnp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmnp_storage.a"
)

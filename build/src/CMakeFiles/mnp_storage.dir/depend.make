# Empty dependencies file for mnp_storage.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for mnp_diff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mnp_diff.dir/diff/delta.cpp.o"
  "CMakeFiles/mnp_diff.dir/diff/delta.cpp.o.d"
  "libmnp_diff.a"
  "libmnp_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

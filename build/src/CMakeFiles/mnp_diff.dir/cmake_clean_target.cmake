file(REMOVE_RECURSE
  "libmnp_diff.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mnp_harness.dir/harness/csv.cpp.o"
  "CMakeFiles/mnp_harness.dir/harness/csv.cpp.o.d"
  "CMakeFiles/mnp_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/mnp_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/mnp_harness.dir/harness/metrics.cpp.o"
  "CMakeFiles/mnp_harness.dir/harness/metrics.cpp.o.d"
  "CMakeFiles/mnp_harness.dir/harness/report.cpp.o"
  "CMakeFiles/mnp_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/mnp_harness.dir/harness/sweep.cpp.o"
  "CMakeFiles/mnp_harness.dir/harness/sweep.cpp.o.d"
  "libmnp_harness.a"
  "libmnp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmnp_harness.a"
)

# Empty compiler generated dependencies file for mnp_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmnp_trace.a"
)

# Empty dependencies file for mnp_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mnp_trace.dir/trace/event_log.cpp.o"
  "CMakeFiles/mnp_trace.dir/trace/event_log.cpp.o.d"
  "libmnp_trace.a"
  "libmnp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

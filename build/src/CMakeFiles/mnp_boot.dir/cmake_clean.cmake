file(REMOVE_RECURSE
  "CMakeFiles/mnp_boot.dir/boot/boot_manager.cpp.o"
  "CMakeFiles/mnp_boot.dir/boot/boot_manager.cpp.o.d"
  "libmnp_boot.a"
  "libmnp_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

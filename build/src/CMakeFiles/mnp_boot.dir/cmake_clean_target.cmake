file(REMOVE_RECURSE
  "libmnp_boot.a"
)

# Empty compiler generated dependencies file for mnp_boot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmnp_sim.a"
)

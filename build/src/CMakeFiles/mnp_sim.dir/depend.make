# Empty dependencies file for mnp_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mnp_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/mnp_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/mnp_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/mnp_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/mnp_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/mnp_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/mnp_sim.dir/sim/time.cpp.o"
  "CMakeFiles/mnp_sim.dir/sim/time.cpp.o.d"
  "libmnp_sim.a"
  "libmnp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mnp_baselines.dir/baselines/deluge_node.cpp.o"
  "CMakeFiles/mnp_baselines.dir/baselines/deluge_node.cpp.o.d"
  "CMakeFiles/mnp_baselines.dir/baselines/moap_node.cpp.o"
  "CMakeFiles/mnp_baselines.dir/baselines/moap_node.cpp.o.d"
  "CMakeFiles/mnp_baselines.dir/baselines/xnp_node.cpp.o"
  "CMakeFiles/mnp_baselines.dir/baselines/xnp_node.cpp.o.d"
  "libmnp_baselines.a"
  "libmnp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

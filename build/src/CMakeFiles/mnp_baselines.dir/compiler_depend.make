# Empty compiler generated dependencies file for mnp_baselines.
# This may be replaced when dependencies are built.

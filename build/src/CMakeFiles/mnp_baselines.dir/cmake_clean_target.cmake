file(REMOVE_RECURSE
  "libmnp_baselines.a"
)

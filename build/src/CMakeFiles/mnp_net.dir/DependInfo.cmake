
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/mnp_net.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/mnp_net.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/csma_mac.cpp" "src/CMakeFiles/mnp_net.dir/net/csma_mac.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/csma_mac.cpp.o.d"
  "/root/repo/src/net/link_model.cpp" "src/CMakeFiles/mnp_net.dir/net/link_model.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/link_model.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/mnp_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/CMakeFiles/mnp_net.dir/net/radio.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/radio.cpp.o.d"
  "/root/repo/src/net/tdma_mac.cpp" "src/CMakeFiles/mnp_net.dir/net/tdma_mac.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/tdma_mac.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/mnp_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/mnp_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mnp_net.dir/net/channel.cpp.o"
  "CMakeFiles/mnp_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/codec.cpp.o"
  "CMakeFiles/mnp_net.dir/net/codec.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/csma_mac.cpp.o"
  "CMakeFiles/mnp_net.dir/net/csma_mac.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/link_model.cpp.o"
  "CMakeFiles/mnp_net.dir/net/link_model.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/packet.cpp.o"
  "CMakeFiles/mnp_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/radio.cpp.o"
  "CMakeFiles/mnp_net.dir/net/radio.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/tdma_mac.cpp.o"
  "CMakeFiles/mnp_net.dir/net/tdma_mac.cpp.o.d"
  "CMakeFiles/mnp_net.dir/net/topology.cpp.o"
  "CMakeFiles/mnp_net.dir/net/topology.cpp.o.d"
  "libmnp_net.a"
  "libmnp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmnp_net.a"
)

# Empty dependencies file for mnp_net.
# This may be replaced when dependencies are built.

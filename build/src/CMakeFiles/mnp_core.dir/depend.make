# Empty dependencies file for mnp_core.
# This may be replaced when dependencies are built.

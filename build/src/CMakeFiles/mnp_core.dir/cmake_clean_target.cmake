file(REMOVE_RECURSE
  "libmnp_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mnp_core.dir/mnp/mnp_config.cpp.o"
  "CMakeFiles/mnp_core.dir/mnp/mnp_config.cpp.o.d"
  "CMakeFiles/mnp_core.dir/mnp/mnp_node.cpp.o"
  "CMakeFiles/mnp_core.dir/mnp/mnp_node.cpp.o.d"
  "CMakeFiles/mnp_core.dir/mnp/program_image.cpp.o"
  "CMakeFiles/mnp_core.dir/mnp/program_image.cpp.o.d"
  "libmnp_core.a"
  "libmnp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

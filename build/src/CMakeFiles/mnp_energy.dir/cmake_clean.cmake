file(REMOVE_RECURSE
  "CMakeFiles/mnp_energy.dir/energy/energy_meter.cpp.o"
  "CMakeFiles/mnp_energy.dir/energy/energy_meter.cpp.o.d"
  "CMakeFiles/mnp_energy.dir/energy/energy_model.cpp.o"
  "CMakeFiles/mnp_energy.dir/energy/energy_model.cpp.o.d"
  "libmnp_energy.a"
  "libmnp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

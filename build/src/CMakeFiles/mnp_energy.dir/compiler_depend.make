# Empty compiler generated dependencies file for mnp_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmnp_energy.a"
)

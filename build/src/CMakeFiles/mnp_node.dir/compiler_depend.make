# Empty compiler generated dependencies file for mnp_node.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mnp_node.dir/node/application.cpp.o"
  "CMakeFiles/mnp_node.dir/node/application.cpp.o.d"
  "CMakeFiles/mnp_node.dir/node/network.cpp.o"
  "CMakeFiles/mnp_node.dir/node/network.cpp.o.d"
  "CMakeFiles/mnp_node.dir/node/node.cpp.o"
  "CMakeFiles/mnp_node.dir/node/node.cpp.o.d"
  "CMakeFiles/mnp_node.dir/node/stats.cpp.o"
  "CMakeFiles/mnp_node.dir/node/stats.cpp.o.d"
  "libmnp_node.a"
  "libmnp_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmnp_node.a"
)

# Empty compiler generated dependencies file for mnp_util.
# This may be replaced when dependencies are built.

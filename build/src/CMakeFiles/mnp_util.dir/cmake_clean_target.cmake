file(REMOVE_RECURSE
  "libmnp_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mnp_util.dir/util/ascii_grid.cpp.o"
  "CMakeFiles/mnp_util.dir/util/ascii_grid.cpp.o.d"
  "CMakeFiles/mnp_util.dir/util/bitmap.cpp.o"
  "CMakeFiles/mnp_util.dir/util/bitmap.cpp.o.d"
  "CMakeFiles/mnp_util.dir/util/crc32.cpp.o"
  "CMakeFiles/mnp_util.dir/util/crc32.cpp.o.d"
  "CMakeFiles/mnp_util.dir/util/histogram.cpp.o"
  "CMakeFiles/mnp_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/mnp_util.dir/util/log.cpp.o"
  "CMakeFiles/mnp_util.dir/util/log.cpp.o.d"
  "libmnp_util.a"
  "libmnp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_grid.cpp" "src/CMakeFiles/mnp_util.dir/util/ascii_grid.cpp.o" "gcc" "src/CMakeFiles/mnp_util.dir/util/ascii_grid.cpp.o.d"
  "/root/repo/src/util/bitmap.cpp" "src/CMakeFiles/mnp_util.dir/util/bitmap.cpp.o" "gcc" "src/CMakeFiles/mnp_util.dir/util/bitmap.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/CMakeFiles/mnp_util.dir/util/crc32.cpp.o" "gcc" "src/CMakeFiles/mnp_util.dir/util/crc32.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/mnp_util.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/mnp_util.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/mnp_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/mnp_util.dir/util/log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

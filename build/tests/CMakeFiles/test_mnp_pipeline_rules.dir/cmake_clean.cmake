file(REMOVE_RECURSE
  "CMakeFiles/test_mnp_pipeline_rules.dir/test_mnp_pipeline_rules.cpp.o"
  "CMakeFiles/test_mnp_pipeline_rules.dir/test_mnp_pipeline_rules.cpp.o.d"
  "test_mnp_pipeline_rules"
  "test_mnp_pipeline_rules.pdb"
  "test_mnp_pipeline_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnp_pipeline_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

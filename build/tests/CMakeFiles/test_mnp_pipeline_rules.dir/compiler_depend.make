# Empty compiler generated dependencies file for test_mnp_pipeline_rules.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mnp_unit.dir/test_mnp_unit.cpp.o"
  "CMakeFiles/test_mnp_unit.dir/test_mnp_unit.cpp.o.d"
  "test_mnp_unit"
  "test_mnp_unit.pdb"
  "test_mnp_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mnp_unit.
# This may be replaced when dependencies are built.

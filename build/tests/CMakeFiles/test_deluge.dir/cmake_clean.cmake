file(REMOVE_RECURSE
  "CMakeFiles/test_deluge.dir/test_deluge.cpp.o"
  "CMakeFiles/test_deluge.dir/test_deluge.cpp.o.d"
  "test_deluge"
  "test_deluge.pdb"
  "test_deluge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deluge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

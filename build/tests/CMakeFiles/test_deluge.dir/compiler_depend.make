# Empty compiler generated dependencies file for test_deluge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mnp_properties.dir/test_mnp_properties.cpp.o"
  "CMakeFiles/test_mnp_properties.dir/test_mnp_properties.cpp.o.d"
  "test_mnp_properties"
  "test_mnp_properties.pdb"
  "test_mnp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

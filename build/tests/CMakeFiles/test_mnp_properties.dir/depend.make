# Empty dependencies file for test_mnp_properties.
# This may be replaced when dependencies are built.

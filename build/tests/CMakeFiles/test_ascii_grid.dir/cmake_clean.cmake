file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_grid.dir/test_ascii_grid.cpp.o"
  "CMakeFiles/test_ascii_grid.dir/test_ascii_grid.cpp.o.d"
  "test_ascii_grid"
  "test_ascii_grid.pdb"
  "test_ascii_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

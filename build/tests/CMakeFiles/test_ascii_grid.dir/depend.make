# Empty dependencies file for test_ascii_grid.
# This may be replaced when dependencies are built.

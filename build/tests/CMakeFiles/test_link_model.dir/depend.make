# Empty dependencies file for test_link_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_link_model.dir/test_link_model.cpp.o"
  "CMakeFiles/test_link_model.dir/test_link_model.cpp.o.d"
  "test_link_model"
  "test_link_model.pdb"
  "test_link_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_moap.dir/test_moap.cpp.o"
  "CMakeFiles/test_moap.dir/test_moap.cpp.o.d"
  "test_moap"
  "test_moap.pdb"
  "test_moap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_moap.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_xnp.
# This may be replaced when dependencies are built.

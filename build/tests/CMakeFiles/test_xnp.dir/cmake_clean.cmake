file(REMOVE_RECURSE
  "CMakeFiles/test_xnp.dir/test_xnp.cpp.o"
  "CMakeFiles/test_xnp.dir/test_xnp.cpp.o.d"
  "test_xnp"
  "test_xnp.pdb"
  "test_xnp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mnp_integration.dir/test_mnp_integration.cpp.o"
  "CMakeFiles/test_mnp_integration.dir/test_mnp_integration.cpp.o.d"
  "test_mnp_integration"
  "test_mnp_integration.pdb"
  "test_mnp_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mnp_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

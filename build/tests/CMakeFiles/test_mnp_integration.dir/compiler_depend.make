# Empty compiler generated dependencies file for test_mnp_integration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_program_image.dir/test_program_image.cpp.o"
  "CMakeFiles/test_program_image.dir/test_program_image.cpp.o.d"
  "test_program_image"
  "test_program_image.pdb"
  "test_program_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

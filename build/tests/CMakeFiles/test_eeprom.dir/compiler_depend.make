# Empty compiler generated dependencies file for test_eeprom.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_eeprom.dir/test_eeprom.cpp.o"
  "CMakeFiles/test_eeprom.dir/test_eeprom.cpp.o.d"
  "test_eeprom"
  "test_eeprom.pdb"
  "test_eeprom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eeprom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

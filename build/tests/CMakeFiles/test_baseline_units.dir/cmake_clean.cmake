file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_units.dir/test_baseline_units.cpp.o"
  "CMakeFiles/test_baseline_units.dir/test_baseline_units.cpp.o.d"
  "test_baseline_units"
  "test_baseline_units.pdb"
  "test_baseline_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

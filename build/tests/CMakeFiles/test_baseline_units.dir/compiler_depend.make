# Empty compiler generated dependencies file for test_baseline_units.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_csma_mac.dir/test_csma_mac.cpp.o"
  "CMakeFiles/test_csma_mac.dir/test_csma_mac.cpp.o.d"
  "test_csma_mac"
  "test_csma_mac.pdb"
  "test_csma_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csma_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

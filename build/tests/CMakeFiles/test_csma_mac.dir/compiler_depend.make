# Empty compiler generated dependencies file for test_csma_mac.
# This may be replaced when dependencies are built.

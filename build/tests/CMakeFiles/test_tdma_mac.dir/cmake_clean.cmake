file(REMOVE_RECURSE
  "CMakeFiles/test_tdma_mac.dir/test_tdma_mac.cpp.o"
  "CMakeFiles/test_tdma_mac.dir/test_tdma_mac.cpp.o.d"
  "test_tdma_mac"
  "test_tdma_mac.pdb"
  "test_tdma_mac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdma_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

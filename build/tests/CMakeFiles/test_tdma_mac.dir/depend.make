# Empty dependencies file for test_tdma_mac.
# This may be replaced when dependencies are built.

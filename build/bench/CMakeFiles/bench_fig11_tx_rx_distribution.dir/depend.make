# Empty dependencies file for bench_fig11_tx_rx_distribution.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_diagonal_vs_edge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_diagonal_vs_edge.dir/bench_diagonal_vs_edge.cpp.o"
  "CMakeFiles/bench_diagonal_vs_edge.dir/bench_diagonal_vs_edge.cpp.o.d"
  "bench_diagonal_vs_edge"
  "bench_diagonal_vs_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagonal_vs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

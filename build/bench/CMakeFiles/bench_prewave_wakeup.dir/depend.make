# Empty dependencies file for bench_prewave_wakeup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_prewave_wakeup.dir/bench_prewave_wakeup.cpp.o"
  "CMakeFiles/bench_prewave_wakeup.dir/bench_prewave_wakeup.cpp.o.d"
  "bench_prewave_wakeup"
  "bench_prewave_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prewave_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_outdoor_7x7.dir/bench_fig6_outdoor_7x7.cpp.o"
  "CMakeFiles/bench_fig6_outdoor_7x7.dir/bench_fig6_outdoor_7x7.cpp.o.d"
  "bench_fig6_outdoor_7x7"
  "bench_fig6_outdoor_7x7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_outdoor_7x7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_outdoor_7x7.
# This may be replaced when dependencies are built.

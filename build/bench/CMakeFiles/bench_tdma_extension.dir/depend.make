# Empty dependencies file for bench_tdma_extension.
# This may be replaced when dependencies are built.

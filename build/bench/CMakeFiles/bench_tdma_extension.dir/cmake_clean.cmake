file(REMOVE_RECURSE
  "CMakeFiles/bench_tdma_extension.dir/bench_tdma_extension.cpp.o"
  "CMakeFiles/bench_tdma_extension.dir/bench_tdma_extension.cpp.o.d"
  "bench_tdma_extension"
  "bench_tdma_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tdma_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

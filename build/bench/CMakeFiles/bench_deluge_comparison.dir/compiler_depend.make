# Empty compiler generated dependencies file for bench_deluge_comparison.
# This may be replaced when dependencies are built.

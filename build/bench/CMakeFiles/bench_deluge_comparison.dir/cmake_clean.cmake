file(REMOVE_RECURSE
  "CMakeFiles/bench_deluge_comparison.dir/bench_deluge_comparison.cpp.o"
  "CMakeFiles/bench_deluge_comparison.dir/bench_deluge_comparison.cpp.o.d"
  "bench_deluge_comparison"
  "bench_deluge_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deluge_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig9_art_no_initial_idle.
# This may be replaced when dependencies are built.

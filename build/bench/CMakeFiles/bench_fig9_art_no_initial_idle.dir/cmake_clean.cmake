file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_art_no_initial_idle.dir/bench_fig9_art_no_initial_idle.cpp.o"
  "CMakeFiles/bench_fig9_art_no_initial_idle.dir/bench_fig9_art_no_initial_idle.cpp.o.d"
  "bench_fig9_art_no_initial_idle"
  "bench_fig9_art_no_initial_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_art_no_initial_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_outdoor_2x10.dir/bench_fig7_outdoor_2x10.cpp.o"
  "CMakeFiles/bench_fig7_outdoor_2x10.dir/bench_fig7_outdoor_2x10.cpp.o.d"
  "bench_fig7_outdoor_2x10"
  "bench_fig7_outdoor_2x10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_outdoor_2x10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

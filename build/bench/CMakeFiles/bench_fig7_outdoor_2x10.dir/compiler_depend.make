# Empty compiler generated dependencies file for bench_fig7_outdoor_2x10.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_propagation.dir/bench_fig13_propagation.cpp.o"
  "CMakeFiles/bench_fig13_propagation.dir/bench_fig13_propagation.cpp.o.d"
  "bench_fig13_propagation"
  "bench_fig13_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig8_active_radio.
# This may be replaced when dependencies are built.

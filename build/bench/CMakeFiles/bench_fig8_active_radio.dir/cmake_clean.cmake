file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_active_radio.dir/bench_fig8_active_radio.cpp.o"
  "CMakeFiles/bench_fig8_active_radio.dir/bench_fig8_active_radio.cpp.o.d"
  "bench_fig8_active_radio"
  "bench_fig8_active_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_active_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_lifetime_rounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_lifetime_rounds.dir/bench_lifetime_rounds.cpp.o"
  "CMakeFiles/bench_lifetime_rounds.dir/bench_lifetime_rounds.cpp.o.d"
  "bench_lifetime_rounds"
  "bench_lifetime_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifetime_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig12_msg_timeline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_battery_aware.
# This may be replaced when dependencies are built.

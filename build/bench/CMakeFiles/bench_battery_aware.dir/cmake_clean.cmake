file(REMOVE_RECURSE
  "CMakeFiles/bench_battery_aware.dir/bench_battery_aware.cpp.o"
  "CMakeFiles/bench_battery_aware.dir/bench_battery_aware.cpp.o.d"
  "bench_battery_aware"
  "bench_battery_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_battery_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_indoor.
# This may be replaced when dependencies are built.

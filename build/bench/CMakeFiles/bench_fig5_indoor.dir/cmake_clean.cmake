file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_indoor.dir/bench_fig5_indoor.cpp.o"
  "CMakeFiles/bench_fig5_indoor.dir/bench_fig5_indoor.cpp.o.d"
  "bench_fig5_indoor"
  "bench_fig5_indoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_indoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

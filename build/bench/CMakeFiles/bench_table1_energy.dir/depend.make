# Empty dependencies file for bench_table1_energy.
# This may be replaced when dependencies are built.

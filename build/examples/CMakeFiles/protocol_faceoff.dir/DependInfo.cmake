
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protocol_faceoff.cpp" "examples/CMakeFiles/protocol_faceoff.dir/protocol_faceoff.cpp.o" "gcc" "examples/CMakeFiles/protocol_faceoff.dir/protocol_faceoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for large_scale_pipeline.
# This may be replaced when dependencies are built.

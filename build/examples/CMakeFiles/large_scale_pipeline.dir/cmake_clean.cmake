file(REMOVE_RECURSE
  "CMakeFiles/large_scale_pipeline.dir/large_scale_pipeline.cpp.o"
  "CMakeFiles/large_scale_pipeline.dir/large_scale_pipeline.cpp.o.d"
  "large_scale_pipeline"
  "large_scale_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_scale_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mnp_sim_cli.
# This may be replaced when dependencies are built.

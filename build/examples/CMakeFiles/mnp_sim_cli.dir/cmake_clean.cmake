file(REMOVE_RECURSE
  "CMakeFiles/mnp_sim_cli.dir/mnp_sim_cli.cpp.o"
  "CMakeFiles/mnp_sim_cli.dir/mnp_sim_cli.cpp.o.d"
  "mnp_sim_cli"
  "mnp_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

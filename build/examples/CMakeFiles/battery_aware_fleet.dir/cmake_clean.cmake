file(REMOVE_RECURSE
  "CMakeFiles/battery_aware_fleet.dir/battery_aware_fleet.cpp.o"
  "CMakeFiles/battery_aware_fleet.dir/battery_aware_fleet.cpp.o.d"
  "battery_aware_fleet"
  "battery_aware_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_aware_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

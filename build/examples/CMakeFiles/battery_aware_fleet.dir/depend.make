# Empty dependencies file for battery_aware_fleet.
# This may be replaced when dependencies are built.

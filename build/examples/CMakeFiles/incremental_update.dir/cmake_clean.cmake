file(REMOVE_RECURSE
  "CMakeFiles/incremental_update.dir/incremental_update.cpp.o"
  "CMakeFiles/incremental_update.dir/incremental_update.cpp.o.d"
  "incremental_update"
  "incremental_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/subset_dissemination.dir/subset_dissemination.cpp.o"
  "CMakeFiles/subset_dissemination.dir/subset_dissemination.cpp.o.d"
  "subset_dissemination"
  "subset_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

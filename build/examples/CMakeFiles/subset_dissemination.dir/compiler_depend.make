# Empty compiler generated dependencies file for subset_dissemination.
# This may be replaced when dependencies are built.

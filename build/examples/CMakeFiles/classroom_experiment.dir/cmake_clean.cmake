file(REMOVE_RECURSE
  "CMakeFiles/classroom_experiment.dir/classroom_experiment.cpp.o"
  "CMakeFiles/classroom_experiment.dir/classroom_experiment.cpp.o.d"
  "classroom_experiment"
  "classroom_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

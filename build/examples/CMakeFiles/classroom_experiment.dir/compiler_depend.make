# Empty compiler generated dependencies file for classroom_experiment.
# This may be replaced when dependencies are built.

#include "bisect.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace mnp::bisect {

namespace {

bool parse_u64(const std::string& s, int base, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Which hash component disagrees at the first diverging record.
std::string divergence_kind(const sim::AuditRecord& a,
                            const sim::AuditRecord& b) {
  if (a.time != b.time) return "event time";
  const bool pending = a.pending != b.pending;
  const bool nodes = a.nodes != b.nodes;
  if (pending && nodes) return "pending-timer set + node state";
  if (pending) return "pending-timer set";
  if (nodes) return "node state";
  // Same components, different chain: the divergence is upstream in a
  // field the chain folds but the record elides — should not happen with
  // the current format, but report it honestly rather than crash.
  return "chain only";
}

}  // namespace

bool parse_audit_log(std::istream& is, AuditLog* out, std::string* error) {
  std::string line;
  if (!std::getline(is, line) || line != "# mnp-audit v1") {
    *error = "missing '# mnp-audit v1' header";
    return false;
  }
  std::uint64_t meta_events = 0;
  bool have_meta = false;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "meta") {
      // meta seed N nodes N tie-break S events N chain HEX
      std::string key, value;
      while (fields >> key >> value) {
        if (key == "seed") {
          if (!parse_u64(value, 10, &out->seed)) break;
        } else if (key == "nodes") {
          std::uint64_t n = 0;
          if (!parse_u64(value, 10, &n)) break;
          out->nodes = static_cast<std::size_t>(n);
        } else if (key == "tie-break") {
          out->tie_break = value;
        } else if (key == "events") {
          if (!parse_u64(value, 10, &meta_events)) break;
        } else if (key == "chain") {
          if (!parse_u64(value, 16, &out->chain)) break;
        }
        // Unknown keys are skipped so newer writers stay readable.
      }
      have_meta = true;
    } else if (tag == "rec") {
      sim::AuditRecord r;
      std::string f_index, f_time, f_node, f_pending, f_nodes, f_chain;
      fields >> f_index >> f_time >> f_node >> f_pending >> f_nodes >> f_chain;
      std::int64_t time = 0, node = 0;
      if (!parse_u64(f_index, 10, &r.index) || !parse_i64(f_time, &time) ||
          !parse_i64(f_node, &node) || !parse_u64(f_pending, 16, &r.pending) ||
          !parse_u64(f_nodes, 16, &r.nodes) ||
          !parse_u64(f_chain, 16, &r.chain)) {
        *error = "malformed rec line " + std::to_string(line_no);
        return false;
      }
      r.time = static_cast<sim::Time>(time);
      r.node = static_cast<std::int32_t>(node);
      out->records.push_back(r);
    } else {
      *error = "unknown line tag '" + tag + "' at line " +
               std::to_string(line_no);
      return false;
    }
  }
  if (!have_meta) {
    *error = "missing meta line";
    return false;
  }
  if (meta_events != out->records.size()) {
    *error = "meta claims " + std::to_string(meta_events) + " events but " +
             std::to_string(out->records.size()) + " records follow";
    return false;
  }
  if (!out->records.empty() && out->records.back().chain != out->chain) {
    *error = "meta chain does not match the final record (truncated log?)";
    return false;
  }
  return true;
}

int report_divergence(std::ostream& os, const AuditLog& a, const AuditLog& b,
                      const std::string& name_a, const std::string& name_b) {
  const sim::AuditDivergence d = sim::first_divergence(a.records, b.records);
  if (!d.diverged) {
    os << "identical: " << a.records.size() << " event(s), chain "
       << hex16(a.chain) << "\n";
    return 0;
  }
  if (d.length_mismatch) {
    os << "diverged: " << name_a << " has " << a.records.size()
       << " event(s), " << name_b << " has " << b.records.size()
       << "; streams agree up to event " << d.index << "\n";
    return 1;
  }
  os << "diverged at event " << d.index << "\n"
     << "  kind:  " << divergence_kind(d.a, d.b) << "\n"
     << "  time:  " << name_a << "=" << d.a.time << " " << name_b << "="
     << d.b.time << "\n"
     << "  node:  " << name_a << "=" << d.a.node << " " << name_b << "="
     << d.b.node << " (first node whose digest moved; -1 = none)\n"
     << "  hash:  " << name_a << "=" << hex16(d.a.chain) << " " << name_b
     << "=" << hex16(d.b.chain) << " delta=" << hex16(d.a.chain ^ d.b.chain)
     << "\n";
  return 1;
}

}  // namespace mnp::bisect

// mnp_bisect: diff two determinism-audit logs (mnp_sim_cli --audit-out)
// and report the first diverging event — its ordinal, sim time, the node
// whose state digest moved, which hash component disagrees and the chain
// delta. Exit codes: 0 identical, 1 diverged, 2 usage/parse error.
//
// The comparison itself is sim::first_divergence, the same routine the
// in-process audit tests use, so the CLI and the test suite can never
// disagree about where two runs split.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/audit.hpp"

namespace mnp::bisect {

/// One parsed --audit-out file: the meta line plus every record.
struct AuditLog {
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  std::string tie_break;
  std::uint64_t chain = 0;  // final chain as claimed by the meta line
  std::vector<sim::AuditRecord> records;
};

/// Parses the "# mnp-audit v1" format. Returns false (with `error` set)
/// on a malformed header, meta line or record, and on a meta/record
/// mismatch (wrong event count, final chain not matching the last record).
bool parse_audit_log(std::istream& is, AuditLog* out, std::string* error);

/// Prints the comparison to `os`; returns the process exit code
/// (0 identical, 1 diverged). `name_a`/`name_b` label the two logs.
int report_divergence(std::ostream& os, const AuditLog& a, const AuditLog& b,
                      const std::string& name_a, const std::string& name_b);

}  // namespace mnp::bisect

// CLI wrapper: mnp_bisect <audit-log-a> <audit-log-b>
#include <fstream>
#include <iostream>
#include <string>

#include "bisect.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: " << (argc > 0 ? argv[0] : "mnp_bisect")
              << " <audit-log-a> <audit-log-b>\n"
              << "Diffs two determinism-audit logs (mnp_sim_cli --audit-out)"
              << " and reports the\nfirst diverging event."
              << " Exit: 0 identical, 1 diverged, 2 error.\n";
    return 2;
  }
  mnp::bisect::AuditLog logs[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(argv[1 + i]);
    if (!in) {
      std::cerr << "cannot open " << argv[1 + i] << "\n";
      return 2;
    }
    std::string error;
    if (!mnp::bisect::parse_audit_log(in, &logs[i], &error)) {
      std::cerr << argv[1 + i] << ": " << error << "\n";
      return 2;
    }
  }
  return mnp::bisect::report_divergence(std::cout, logs[0], logs[1], "A", "B");
}

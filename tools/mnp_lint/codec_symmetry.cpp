// Rule family: codec symmetry.
//
// Every wire message must encode and decode the same field sequence. The
// encoder side is the EncodeVisitor overload set in src/net/codec.cpp
// (`void operator()(const XMsg& m) const` writing Writer primitives); the
// decoder side is the matching `case` in decode_payload() (declaring
// `XMsg m;` and reading Reader primitives). Both sides are reduced to a
// normalized op sequence — u8 / u16 / u32 / bitmap, with Writer::bytes
// and Reader::take folded to "blob" — and diffed elementwise. Because
// the codec chains reads with short-circuit `||`, textual order is
// execution order on both sides.
//
// Findings: a field order/width mismatch, a field count mismatch, or a
// message type with only one side implemented. The frame header (dest,
// src, type, crc) is written outside the visitor and is out of scope.

#include <algorithm>

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

constexpr const char* kRule = "codec-symmetry";

struct Op {
  std::string name;  // normalized: u8 / u16 / u32 / bitmap / blob
  int line = 0;
};

struct Side {
  std::vector<Op> ops;
  int line = 0;  // where the encoder overload / decoder case starts
};

/// Writer/Reader primitive -> normalized op; empty when not a codec op.
std::string normalize(const std::string& ident) {
  if (ident == "u8" || ident == "u16" || ident == "u32" ||
      ident == "bitmap") {
    return ident;
  }
  if (ident == "bytes" || ident == "take") return "blob";
  return "";
}

bool is_msg_ident(const Token& t) {
  return t.ident() && t.text.size() > 3 &&
         t.text.compare(t.text.size() - 3, 3, "Msg") == 0;
}

/// Collects normalized codec ops — method calls `x.op(` — in [begin, end).
std::vector<Op> collect_ops(const std::vector<Token>& t, std::size_t begin,
                            std::size_t end) {
  std::vector<Op> ops;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!t[i].ident() || !t[i + 1].is("(")) continue;
    if (i == 0 || !t[i - 1].is(".")) continue;
    const std::string op = normalize(t[i].text);
    if (!op.empty()) ops.push_back(Op{op, t[i].line});
  }
  return ops;
}

/// Encoder side: every `operator()(const XMsg& m) const { ... }`.
std::map<std::string, Side> find_encoders(const std::vector<Token>& t) {
  std::map<std::string, Side> out;
  for (std::size_t i = 0; i + 10 < t.size(); ++i) {
    if (!(t[i].is("operator") && t[i + 1].is("(") && t[i + 2].is(")") &&
          t[i + 3].is("(") && t[i + 4].is("const") && is_msg_ident(t[i + 5]) &&
          t[i + 6].is("&") && t[i + 7].ident() && t[i + 8].is(")"))) {
      continue;
    }
    std::size_t k = i + 9;
    while (t[k].is("const") || t[k].is("noexcept")) ++k;
    if (!t[k].is("{")) continue;
    const std::size_t end = match_delim(t, k);
    out.emplace(t[i + 5].text,
                Side{collect_ops(t, k + 1, end), t[i + 5].line});
    i = end;
  }
  return out;
}

/// Decoder side: inside decode_payload's body, each `XMsg m;` declaration
/// owns the ops up to the next declaration (cases are textually disjoint,
/// so this segmentation matches the switch structure).
std::map<std::string, Side> find_decoders(const std::vector<Token>& t) {
  std::map<std::string, Side> out;
  std::size_t body_begin = 0, body_end = 0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].is("decode_payload") && t[i + 1].is("("))) continue;
    std::size_t k = match_delim(t, i + 1) + 1;
    while (t[k].is("const") || t[k].is("noexcept")) ++k;
    if (!t[k].is("{")) continue;
    body_begin = k + 1;
    body_end = match_delim(t, k);
    break;
  }
  if (body_begin == 0) return out;

  struct Decl {
    std::string msg;
    std::size_t pos;
    int line;
  };
  std::vector<Decl> decls;
  for (std::size_t i = body_begin; i + 2 < body_end; ++i) {
    if (is_msg_ident(t[i]) && t[i + 1].ident() && t[i + 2].is(";")) {
      decls.push_back(Decl{t[i].text, i + 3, t[i].line});
    }
  }
  for (std::size_t d = 0; d < decls.size(); ++d) {
    const std::size_t seg_end =
        d + 1 < decls.size() ? decls[d + 1].pos - 3 : body_end;
    out.emplace(decls[d].msg,
                Side{collect_ops(t, decls[d].pos, seg_end), decls[d].line});
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_codec_symmetry(const SourceFile& file) {
  std::vector<Diagnostic> diags;
  const std::vector<Token> tokens = lex(file.content);
  const std::map<std::string, Side> enc = find_encoders(tokens);
  const std::map<std::string, Side> dec = find_decoders(tokens);

  std::set<std::string> names;
  for (const auto& [n, s] : enc) names.insert(n);
  for (const auto& [n, s] : dec) names.insert(n);

  for (const std::string& name : names) {
    const auto ei = enc.find(name);
    const auto di = dec.find(name);
    if (ei == enc.end()) {
      diags.push_back(Diagnostic{
          kRule, file.path, di->second.line,
          "message '" + name +
              "' has a decode_payload case but no encoder overload"});
      continue;
    }
    if (di == dec.end()) {
      diags.push_back(Diagnostic{
          kRule, file.path, ei->second.line,
          "message '" + name +
              "' has an encoder overload but no decode_payload case"});
      continue;
    }
    const std::vector<Op>& w = ei->second.ops;
    const std::vector<Op>& r = di->second.ops;
    const std::size_t n = std::min(w.size(), r.size());
    bool mismatched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (w[i].name == r[i].name) continue;
      diags.push_back(Diagnostic{
          kRule, file.path, r[i].line,
          "message '" + name + "' field " + std::to_string(i + 1) +
              ": encoder writes " + w[i].name + " (line " +
              std::to_string(w[i].line) + ") but decoder reads " +
              r[i].name});
      mismatched = true;
      break;  // downstream fields are misaligned; one finding suffices
    }
    if (!mismatched && w.size() != r.size()) {
      diags.push_back(Diagnostic{
          kRule, file.path, di->second.line,
          "message '" + name + "': encoder writes " +
              std::to_string(w.size()) + " field" +
              (w.size() == 1 ? "" : "s") + " but decoder reads " +
              std::to_string(r.size())});
    }
  }
  return diags;
}

}  // namespace mnp::lint

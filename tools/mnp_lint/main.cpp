// mnp_lint CLI.
//
//   mnp_lint --repo <root>     lint <root>/src against the specs and
//                              allowlist in <root>/tools/mnp_lint/
//   mnp_lint <root>            same
//
// Exit status: 0 clean, 1 findings, 2 usage/config error. Registered as
// the `mnp_lint.src` CTest test and run by the CI `lint` job.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: mnp_lint [--repo] <repo-root>\n";
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "mnp_lint: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (root.empty()) root = ".";
  const fs::path src_dir = root / "src";
  const fs::path cfg_dir = root / "tools" / "mnp_lint";
  if (!fs::is_directory(src_dir)) {
    std::cerr << "mnp_lint: no src/ under " << root << "\n";
    return 2;
  }

  // Collect the source set (sorted for stable output). src/ carries every
  // rule family; bench/ and tools/ are scanned for the determinism and
  // allowlist families.
  std::vector<mnp::lint::SourceFile> files;
  for (const char* dir : {"src", "bench", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
        continue;
      }
      files.push_back(mnp::lint::SourceFile{rel_path(entry.path(), root),
                                            read_file(entry.path())});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });

  // Machine specs: every *_transitions.txt next to this tool's sources.
  std::vector<mnp::lint::MachineSpec> specs;
  if (fs::is_directory(cfg_dir)) {
    std::vector<fs::path> spec_paths;
    for (const auto& entry : fs::directory_iterator(cfg_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 16 &&
          name.compare(name.size() - 16, 16, "_transitions.txt") == 0) {
        spec_paths.push_back(entry.path());
      }
    }
    std::sort(spec_paths.begin(), spec_paths.end());
    for (const fs::path& p : spec_paths) {
      mnp::lint::MachineSpec spec;
      std::string error;
      if (!mnp::lint::parse_machine_spec(read_file(p), &spec, &error)) {
        std::cerr << "mnp_lint: " << p.filename().string() << ": " << error
                  << "\n";
        return 2;
      }
      specs.push_back(std::move(spec));
    }
  }

  mnp::lint::Allowlist allow;
  const fs::path allow_path = cfg_dir / "allowlist.txt";
  if (fs::exists(allow_path)) {
    allow = mnp::lint::parse_allowlist(read_file(allow_path));
  }

  const std::vector<mnp::lint::Diagnostic> diags =
      mnp::lint::run_all(files, specs, allow);
  for (const mnp::lint::Diagnostic& d : diags) {
    std::cerr << d.str() << "\n";
  }
  std::cout << "mnp_lint: " << files.size() << " files, " << specs.size()
            << " machine specs, " << diags.size() << " finding"
            << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}

// mnp_lint: repo-specific static analysis for the MNP simulator.
//
// Three rule families (DESIGN.md section 8):
//
//  * state-machine — reconstructs each protocol's transition table from
//    its `change_state(State::kX)` / `state_ = State::kX` sites using
//    guard/switch/assert context tracking, and diffs the result against a
//    checked-in machine spec (tools/mnp_lint/*_transitions.txt). A
//    transition the spec forbids, a spec transition with no implementing
//    code, or a transition site whose source state cannot be resolved are
//    all errors.
//
//  * determinism — bans wall-clock and global-PRNG identifiers
//    (std::rand, srand, time(...), system_clock, random_device, ...) and
//    unordered associative containers anywhere under src/; per-file
//    allowlist entries (allowlist.txt) document the vetted exceptions.
//
//  * hygiene — every codec Reader primitive bounds-checks before touching
//    the buffer, value-returning factories in net/frame.hpp and storage/
//    carry [[nodiscard]], and no `new`/`delete` appears outside the
//    pooled allocators in net/frame.cpp.
//
// Everything operates on in-memory SourceFiles so the GTest suite
// (tests/test_mnp_lint.cpp) can feed fixture snippets; main.cpp wires the
// same entry points to the real tree.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mnp::lint {

struct Diagnostic {
  std::string rule;     // "state-machine", "determinism", "hygiene"
  std::string file;
  int line = 0;
  std::string message;

  std::string str() const;
};

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/mnp/mnp_node.cpp"
  std::string content;
};

/// One protocol state machine spec, parsed from a *_transitions.txt file.
struct MachineSpec {
  std::string name;                  // "mnp", "deluge", ...
  std::string file;                  // source file implementing it
  std::vector<std::string> states;   // declared state universe
  /// Transient pseudo-state (the paper's Fail) and the function that
  /// implements passing through it; both empty when the machine has none.
  std::string transient_state;
  std::string transient_fn;
  std::string initial;
  std::set<std::pair<std::string, std::string>> transitions;

  bool has_state(const std::string& s) const;
};

/// Allowlist: lines of "<rule> <file> <token>  # justification".
class Allowlist {
 public:
  void add(std::string rule, std::string file, std::string token);
  bool allows(const std::string& rule, const std::string& file,
              const std::string& token) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string rule, file, token;
  };
  std::vector<Entry> entries_;
};

/// Parses a spec file; returns false and sets *error on malformed input.
bool parse_machine_spec(const std::string& text, MachineSpec* spec,
                        std::string* error);

/// Parses allowlist.txt (unknown lines are ignored as comments).
Allowlist parse_allowlist(const std::string& text);

/// One extracted transition with the site that implements it.
struct ExtractedTransition {
  std::string from, to;
  int line = 0;
};

/// Reconstructs the transition table of `spec`'s machine from `file`.
/// Extraction problems (unknown state names, unattributable transition
/// sites) are appended to *diags.
std::vector<ExtractedTransition> extract_transitions(
    const SourceFile& file, const MachineSpec& spec,
    std::vector<Diagnostic>* diags);

/// Full rule family 1: extraction + both diff directions against the spec.
std::vector<Diagnostic> check_state_machine(const SourceFile& file,
                                            const MachineSpec& spec);

/// Rule family 2 over one file.
std::vector<Diagnostic> check_determinism(const SourceFile& file,
                                          const Allowlist& allow);

/// Rule family 3 over one file.
std::vector<Diagnostic> check_hygiene(const SourceFile& file,
                                      const Allowlist& allow);

/// Runs every family over a file set. Machine specs apply to the file
/// whose path ends with spec.file; the other families apply to all files.
std::vector<Diagnostic> run_all(const std::vector<SourceFile>& files,
                                const std::vector<MachineSpec>& specs,
                                const Allowlist& allow);

}  // namespace mnp::lint

// mnp_lint: repo-specific static analysis for the MNP simulator.
//
// Rule families (DESIGN.md sections 8 and 12):
//
//  * state-machine — reconstructs each protocol's transition table from
//    its `change_state(State::kX)` / `state_ = State::kX` sites using
//    guard/switch/assert context tracking, and diffs the result against a
//    checked-in machine spec (tools/mnp_lint/*_transitions.txt). A
//    transition the spec forbids, a spec transition with no implementing
//    code, or a transition site whose source state cannot be resolved are
//    all errors.
//
//  * determinism — bans wall-clock and global-PRNG identifiers
//    (std::rand, srand, time(...), system_clock, random_device, ...) and
//    unordered associative containers under src/, bench/ and tools/;
//    per-file allowlist entries (allowlist.txt) document the vetted
//    exceptions.
//
//  * hygiene — every codec Reader primitive bounds-checks before touching
//    the buffer, value-returning factories in net/frame.hpp and storage/
//    carry [[nodiscard]], and no `new`/`delete` appears outside the
//    pooled allocators in net/frame.cpp.
//
//  * codec-symmetry — pairs each EncodeVisitor overload in codec.cpp
//    with the matching decode_payload case by *Msg struct name and diffs
//    the Writer op sequence against the Reader op sequence; a field
//    order/width/count mismatch or a message with only one side
//    implemented is an error.
//
//  * timer-discipline — using the transition specs, verifies every timer
//    armed in a protocol state is cancelled or re-armed on every outgoing
//    edge of that state (the stale-timer-fires-in-wrong-state bug). The
//    spec-independent reboot-reset sub-rule additionally requires
//    reset_for_reboot() to cancel every timer the file owns.
//
//  * allowlist — staleness: an allowlist.txt entry whose file is no
//    longer in the scanned set, or whose token no longer appears in that
//    file, is an error so justifications can't rot silently.
//
// Everything operates on in-memory SourceFiles so the GTest suite
// (tests/test_mnp_lint.cpp) can feed fixture snippets; main.cpp wires the
// same entry points to the real tree.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mnp::lint {

struct Diagnostic {
  std::string rule;     // "state-machine", "determinism", "hygiene"
  std::string file;
  int line = 0;
  std::string message;

  std::string str() const;
};

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/mnp/mnp_node.cpp"
  std::string content;
};

/// One protocol state machine spec, parsed from a *_transitions.txt file.
struct MachineSpec {
  std::string name;                  // "mnp", "deluge", ...
  std::string file;                  // source file implementing it
  std::vector<std::string> states;   // declared state universe
  /// Transient pseudo-state (the paper's Fail) and the function that
  /// implements passing through it; both empty when the machine has none.
  std::string transient_state;
  std::string transient_fn;
  std::string initial;
  std::set<std::pair<std::string, std::string>> transitions;

  bool has_state(const std::string& s) const;
};

/// One allowlist line: "<rule> <file> <token>  # justification".
struct AllowEntry {
  std::string rule, file, token;
};

/// Allowlist: lines of "<rule> <file> <token>  # justification".
class Allowlist {
 public:
  void add(std::string rule, std::string file, std::string token);
  bool allows(const std::string& rule, const std::string& file,
              const std::string& token) const;
  std::size_t size() const { return entries_.size(); }
  const std::vector<AllowEntry>& entries() const { return entries_; }

 private:
  std::vector<AllowEntry> entries_;
};

/// Parses a spec file; returns false and sets *error on malformed input.
bool parse_machine_spec(const std::string& text, MachineSpec* spec,
                        std::string* error);

/// Parses allowlist.txt (unknown lines are ignored as comments).
Allowlist parse_allowlist(const std::string& text);

/// One extracted transition with the site that implements it.
struct ExtractedTransition {
  std::string from, to;
  int line = 0;
};

/// Reconstructs the transition table of `spec`'s machine from `file`.
/// Extraction problems (unknown state names, unattributable transition
/// sites) are appended to *diags.
std::vector<ExtractedTransition> extract_transitions(
    const SourceFile& file, const MachineSpec& spec,
    std::vector<Diagnostic>* diags);

/// Full rule family 1: extraction + both diff directions against the spec.
std::vector<Diagnostic> check_state_machine(const SourceFile& file,
                                            const MachineSpec& spec);

/// Rule family 2 over one file.
std::vector<Diagnostic> check_determinism(const SourceFile& file,
                                          const Allowlist& allow);

/// Rule family 3 over one file.
std::vector<Diagnostic> check_hygiene(const SourceFile& file,
                                      const Allowlist& allow);

/// Codec symmetry over one codec.cpp translation unit.
std::vector<Diagnostic> check_codec_symmetry(const SourceFile& file);

/// Timer usage model of one protocol file, extracted alongside the
/// transition table by the state-machine extractor.
struct TimerModel {
  /// One transition site: the edge, the function whose analysis emitted
  /// it (cancel lookups chase its call graph), and the timers whose
  /// expiry callbacks enclose the site — a timer that has already fired
  /// is no longer pending and needs no cancel.
  struct Site {
    std::string from, to, fn;
    std::set<std::string> fired;
    int line = 0;
  };
  /// timer ident -> states an arm site was attributed to.
  std::map<std::string, std::set<std::string>> armed_in;
  /// function -> timers it cancels or re-arms, transitively over the
  /// unqualified call graph.
  std::map<std::string, std::set<std::string>> handled;
  std::vector<Site> sites;
};

/// Extracts the timer model (arm sites resolve source states through the
/// same guard/helper attribution as transitions). Extraction problems are
/// appended to *diags when non-null; pass nullptr to suppress duplicates
/// of check_state_machine's diagnostics.
TimerModel extract_timer_model(const SourceFile& file,
                               const MachineSpec& spec,
                               std::vector<Diagnostic>* diags);

/// Timer discipline over one protocol file against its machine spec.
std::vector<Diagnostic> check_timer_discipline(const SourceFile& file,
                                               const MachineSpec& spec,
                                               const Allowlist& allow);

/// Spec-independent sub-rule: a file defining reset_for_reboot() must
/// cancel or reassign every *timer_ member it uses (transitively).
std::vector<Diagnostic> check_reboot_reset(const SourceFile& file,
                                           const Allowlist& allow);

/// Staleness: every allowlist entry must name a scanned file that still
/// contains the allowlisted token.
std::vector<Diagnostic> check_allowlist_staleness(
    const std::vector<SourceFile>& files, const Allowlist& allow);

/// Runs every family over a file set. Machine specs apply to the file
/// whose path ends with spec.file; determinism applies to all files;
/// hygiene and reboot-reset to src/; codec-symmetry to *codec.cpp.
std::vector<Diagnostic> run_all(const std::vector<SourceFile>& files,
                                const std::vector<MachineSpec>& specs,
                                const Allowlist& allow);

}  // namespace mnp::lint

// Rule family 3: hygiene rules, plus the run_all driver.
//
//  (a) codec bounds: every member function of a *Reader* class in
//      net/codec.cpp that touches the raw buffer (`data_[...]`,
//      `data_ + ...`) must compare against `size_` first, and decode()
//      must validate `length` before indexing `frame[...]`. The malformed
//      -frame fuzz tests catch most violations dynamically; this rule
//      catches them before a fuzz corpus has to.
//
//  (b) [[nodiscard]] factories: value-returning functions in
//      net/frame.hpp and storage/*.hpp whose names promise a resource
//      (acquire*/adopt*/read*/make*/create*/clone*) must be annotated —
//      dropping an acquired payload buffer or an EEPROM read is always a
//      bug.
//
//  (c) allocation: no raw `new` / `delete` outside the pooled allocators
//      in net/frame.cpp (allowlisted there); protocol and sim code uses
//      containers and the frame pool.

#include <array>
#include <optional>

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

constexpr const char* kRule = "hygiene";

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool is_comparison(const Token& t) {
  return t.is("<") || t.is(">") || t.is("<=") || t.is(">=");
}

/// Checks one function body [begin, end): if it reads the raw buffer
/// (`buf[...]` / `buf + ...`), a `guard` comparison must come first.
void check_bounds_body(const std::vector<Token>& t, std::size_t begin,
                       std::size_t end, const std::string& buf,
                       const std::string& guard, const std::string& what,
                       const SourceFile& file,
                       std::vector<Diagnostic>* diags) {
  std::optional<std::size_t> first_access;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].is(buf) && (t[i + 1].is("[") || t[i + 1].is("+"))) {
      first_access = i;
      break;
    }
  }
  if (!first_access) return;
  for (std::size_t i = begin; i < *first_access; ++i) {
    if (!t[i].is(guard)) continue;
    if ((i > begin && is_comparison(t[i - 1])) || is_comparison(t[i + 1])) {
      return;  // bounds check precedes the access
    }
  }
  diags->push_back(Diagnostic{
      kRule, file.path, t[*first_access].line,
      what + " reads '" + buf + "' without checking '" + guard +
          "' first"});
}

/// (a) codec bounds rule over one file.
void check_codec_bounds(const SourceFile& file, const std::vector<Token>& t,
                        std::vector<Diagnostic>* diags) {
  // Reader-class member functions.
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].is("class") && t[i + 1].ident() &&
          t[i + 1].text.find("Reader") != std::string::npos)) {
      continue;
    }
    std::size_t open = i + 2;
    while (open < t.size() && !t[open].is("{") && !t[open].is(";")) ++open;
    if (!t[open].is("{")) continue;
    const std::size_t close = match_delim(t, open);
    for (std::size_t j = open + 1; j < close; ++j) {
      if (!(t[j].ident() && t[j + 1].is("("))) continue;
      std::size_t k = match_delim(t, j + 1) + 1;
      while (t[k].is("const") || t[k].is("noexcept")) ++k;
      if (!t[k].is("{")) continue;  // ctor init-list, declarations
      const std::size_t body_end = match_delim(t, k);
      check_bounds_body(t, k + 1, body_end, "data_", "size_",
                        "Reader::" + t[j].text, file, diags);
      j = body_end;
    }
    i = close;
  }
  // decode(): `length` must gate `frame[...]`.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].is("decode") && t[i + 1].is("("))) continue;
    std::size_t k = match_delim(t, i + 1) + 1;
    while (t[k].is("const") || t[k].is("noexcept")) ++k;
    if (!t[k].is("{")) continue;
    const std::size_t body_end = match_delim(t, k);
    check_bounds_body(t, k + 1, body_end, "frame", "length", "decode()", file,
                      diags);
    i = body_end;
  }
}

/// (b) [[nodiscard]] factory rule over one header.
void check_nodiscard(const SourceFile& file, const std::vector<Token>& t,
                     std::vector<Diagnostic>* diags) {
  static const std::array<const char*, 5> kPrefixes = {
      "acquire", "adopt", "make", "create", "clone"};
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!(t[i].ident() && t[i + 1].is("("))) continue;
    const std::string& name = t[i].text;
    bool factory = name == "read" || has_prefix(name, "read_");
    for (const char* p : kPrefixes) factory = factory || has_prefix(name, p);
    if (!factory) continue;
    // Qualified names and member calls are uses, not declarations.
    if (t[i - 1].is("::") || t[i - 1].is(".") || t[i - 1].is("->")) continue;
    // Walk back over the return type to the start of the declaration.
    std::size_t b = i;
    while (b > 0 && !(t[b - 1].is(";") || t[b - 1].is("{") ||
                      t[b - 1].is("}") || t[b - 1].is(":"))) {
      --b;
    }
    if (b == i) continue;  // no return type at all: a call, not a decl
    bool returns_void = false, has_nodiscard = false, has_type = false;
    for (std::size_t j = b; j < i; ++j) {
      if (t[j].is("void") && !t[j + 1].is("*")) returns_void = true;
      if (t[j].is("nodiscard")) has_nodiscard = true;
      if (t[j].ident()) has_type = true;
    }
    if (!has_type || returns_void || has_nodiscard) continue;
    diags->push_back(Diagnostic{
        kRule, file.path, t[i].line,
        "value-returning factory '" + name +
            "' must be [[nodiscard]]: dropping its result is always a bug"});
  }
}

/// (c) raw allocation rule.
void check_allocation(const SourceFile& file, const std::vector<Token>& t,
                      const Allowlist& allow,
                      std::vector<Diagnostic>* diags) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].is("new") && !(i > 0 && t[i - 1].is("."))) {
      if (allow.allows("allocation", file.path, "new")) continue;
      diags->push_back(Diagnostic{
          kRule, file.path, t[i].line,
          "raw 'new' outside the pooled allocators in net/frame.cpp"});
    }
    if (t[i].is("delete") && !(i > 0 && t[i - 1].is("="))) {
      if (allow.allows("allocation", file.path, "delete")) continue;
      diags->push_back(Diagnostic{
          kRule, file.path, t[i].line,
          "raw 'delete' outside the pooled allocators in net/frame.cpp"});
    }
  }
}

}  // namespace

std::vector<Diagnostic> check_hygiene(const SourceFile& file,
                                      const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  const std::vector<Token> tokens = lex(file.content);
  if (ends_with(file.path, "codec.cpp")) {
    check_codec_bounds(file, tokens, &diags);
  }
  if (ends_with(file.path, ".hpp") &&
      (ends_with(file.path, "net/frame.hpp") ||
       file.path.find("storage/") != std::string::npos)) {
    check_nodiscard(file, tokens, &diags);
  }
  check_allocation(file, tokens, allow, &diags);
  return diags;
}

std::vector<Diagnostic> run_all(const std::vector<SourceFile>& files,
                                const std::vector<MachineSpec>& specs,
                                const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  auto append = [&](std::vector<Diagnostic> more) {
    for (Diagnostic& d : more) diags.push_back(std::move(d));
  };
  for (const MachineSpec& spec : specs) {
    bool found = false;
    for (const SourceFile& f : files) {
      if (!ends_with(f.path, spec.file)) continue;
      append(check_state_machine(f, spec));
      append(check_timer_discipline(f, spec, allow));
      found = true;
    }
    if (!found) {
      diags.push_back(Diagnostic{
          "state-machine", spec.file, 0,
          "spec '" + spec.name + "' names a file not in the scanned set"});
    }
  }
  for (const SourceFile& f : files) {
    // Determinism applies everywhere the scan reaches (src/bench/tools);
    // the structural rules are scoped to the simulator sources.
    append(check_determinism(f, allow));
    if (has_prefix(f.path, "src/")) {
      append(check_hygiene(f, allow));
      append(check_reboot_reset(f, allow));
    }
    if (ends_with(f.path, "codec.cpp")) {
      append(check_codec_symmetry(f));
    }
  }
  append(check_allowlist_staleness(files, allow));
  return diags;
}

}  // namespace mnp::lint

#include "lexer.hpp"

#include <array>
#include <cctype>

namespace mnp::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character punctuators the rules care about. Longer ones (<<=, ...)
/// never matter to a rule, so splitting them into two tokens is harmless.
constexpr std::array<std::string_view, 19> kTwoCharPunct = {
    "==", "!=", "->", "::", "&&", "||", ">=", "<=", "+=", "-=",
    "*=", "/=", "|=", "&=", "^=", "<<", ">>", "++", "--",
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](Token::Kind kind, std::string text) {
    out.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: drop the whole (possibly continued) line.
    if (c == '#' && (out.empty() || out.back().line != line)) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // String / char literal (contents dropped). Raw strings are handled
    // well enough for lint fixtures: R"( ... )".
    if (c == '"' || c == '\'') {
      if (c == '"' && !out.empty() && out.back().ident() &&
          (out.back().text == "R" || out.back().text.ends_with("R")) &&
          i + 1 < n && src[i + 1] == '(') {
        // Raw string R"delim( ... )delim" — find the delimiter.
        std::size_t p = i + 1;
        while (p < n && src[p] != '(') ++p;
        const std::string delim = ")" + std::string(src.substr(i + 1, p - i - 1)) + "\"";
        const std::size_t end = src.find(delim, p);
        for (std::size_t k = i; k < end && k < n; ++k) {
          if (src[k] == '\n') ++line;
        }
        i = (end == std::string_view::npos) ? n : end + delim.size();
        out.pop_back();  // the R prefix is part of the literal
        push(Token::Kind::kString, "");
        continue;
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(Token::Kind::kString, "");
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      push(Token::Kind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      push(Token::Kind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Punctuation: prefer the two-char forms the rules match on.
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      for (const std::string_view p : kTwoCharPunct) {
        if (two == p) {
          push(Token::Kind::kPunct, std::string(two));
          i += 2;
          goto next;
        }
      }
    }
    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  next:;
  }
  push(Token::Kind::kEnd, "");
  return out;
}

std::size_t match_delim(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& o = tokens[open].text;
  const std::string close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == o) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return tokens.empty() ? 0 : tokens.size() - 1;
}

}  // namespace mnp::lint

// Rule family 1: state-machine extraction and spec verification.
//
// The extractor reconstructs a protocol's transition table from its
// sources without an AST. It understands the two transition idioms this
// repository uses — `change_state(State::kX)` (MNP) and direct
// `state_ = State::kX;` assignment (baselines) — and resolves each site's
// *source* state from syntactic context:
//
//   * `switch (state_) { case State::kX: ... }` labels,
//   * pure state guards: `if (state_ != State::kX) return;`,
//     `if (state_ == State::kX) { ... }` (&&-conjoined and ||-disjoined
//     forms included; a guard mixing states with other atoms refines the
//     then-branch but never the code after it),
//   * `assert(state_ == State::kX)` entry guards,
//   * `if (state_ == State::kX) { ...; return; }` subtraction: code after
//     a pure, returning guard runs in every *other* state,
//   * helper attribution: a function that changes state before any
//     context is established (MNP's `enter_*` family) exports that target
//     to its call sites; attribution iterates to a fixed point, so
//     helpers calling helpers resolve too,
//   * lambdas inherit the context at their definition site (a timer armed
//     in Download fires in Download — protocol code cancels timers on
//     every transition, which is what makes this sound).
//
// The paper's transient Fail state has no enum value (MNP passes through
// it atomically); the spec's `transient Fail fail` directive maps calls
// of `fail()` to entering Fail, and analyzes `fail`'s own body in the
// Fail context, which yields the Fail -> Idle / Fail -> Advertise edges.
//
// A transition site whose source state cannot be resolved is itself an
// error: it means a public entry point mutates protocol state without a
// guard the verifier (or a human) can reason about.

#include <algorithm>
#include <map>
#include <optional>

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

using TokenVec = std::vector<Token>;
using StateSet = std::set<std::string>;

constexpr const char* kRule = "state-machine";

/// Possible source states at a program point. `known == false` means "no
/// context established yet" (distinct from the empty set).
struct Ctx {
  bool known = false;
  StateSet states;

  static Ctx unknown() { return Ctx{}; }
  static Ctx of(StateSet s) { return Ctx{true, std::move(s)}; }
};

/// Caller-attributed targets of one function.
struct FuncInfo {
  std::size_t body_begin = 0, body_end = 0;  // token range, exclusive end
  int line = 0;
  StateSet immediate;  // state changes on the call's own control path
  StateSet deferred;   // state changes armed via lambdas (timers)
  StateSet arms;       // timers armed before any context is established
  bool called = false;
};

/// `*timer_` member idents are the repository's timer-handle idiom.
bool is_timer_ident(const Token& t) {
  return t.ident() && t.text.size() >= 6 &&
         t.text.compare(t.text.size() - 6, 6, "timer_") == 0;
}

struct CondInfo {
  StateSet positives, negatives;
  bool pure = false;    // only state_ comparisons, && || ( )
  bool has_or = false;
  bool any_atom() const { return !positives.empty() || !negatives.empty(); }
};

bool is_keyword(const std::string& s) {
  static const StateSet kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default",
      "return", "break", "continue", "goto", "new", "delete", "sizeof",
      "throw", "co_return", "co_await", "static_cast", "const_cast",
      "reinterpret_cast", "dynamic_cast", "assert"};
  return kKeywords.count(s) > 0;
}

class Extractor {
 public:
  Extractor(const SourceFile& file, const MachineSpec& spec,
            std::vector<Diagnostic>* diags, TimerModel* tm = nullptr)
      : file_(file),
        spec_(spec),
        diags_(diags),
        tm_(tm),
        tokens_(lex(file.content)) {
    for (const std::string& s : spec_.states) {
      if (s != spec_.transient_state) universe_.insert(s);
    }
  }

  std::vector<ExtractedTransition> run() {
    find_functions();
    build_timer_handled();
    // Fixed point over caller-attributed targets, then one emitting pass.
    for (std::size_t round = 0; round < funcs_.size() + 2; ++round) {
      changed_ = false;
      analyze_all(/*emit=*/false);
      if (!changed_) break;
    }
    analyze_all(/*emit=*/true);
    report_unattributed();
    return std::move(out_);
  }

 private:
  // --- function discovery -------------------------------------------------

  void find_functions() {
    const TokenVec& t = tokens_;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      std::string name;
      std::size_t paren = 0;
      if (t[i].ident() && t[i + 1].is("::") && t[i + 2].ident() &&
          t[i + 3].is("(")) {
        name = t[i + 2].text;  // Class::method(
        paren = i + 3;
      } else if (t[i].ident() && t[i + 1].is("(") && i > 0 &&
                 t[i - 1].ident() && !is_keyword(t[i - 1].text) &&
                 !is_keyword(t[i].text)) {
        name = t[i].text;  // ReturnType name(   (free functions, fixtures)
        paren = i + 1;
      } else {
        continue;
      }
      std::size_t k = match_delim(t, paren) + 1;
      while (t[k].is("const") || t[k].is("noexcept") || t[k].is("override") ||
             t[k].is("final")) {
        ++k;
      }
      if (!t[k].is("{")) continue;
      const std::size_t end = match_delim(t, k);
      if (funcs_.count(name) == 0) {
        funcs_[name] = FuncInfo{k + 1, end, t[i].line, {}, {}, {}, false};
      }
      i = end;  // methods never nest
    }
  }

  /// Timer cancels/re-arms (`x_timer_.cancel()` / `x_timer_ = ...`) and
  /// unqualified helper calls in one token range. Nested lambda bodies
  /// are skipped: code inside a callback runs when the timer fires, not
  /// when this range executes, so its cancels don't count here.
  void collect_handles(std::size_t begin, std::size_t end, StateSet* direct,
                       std::set<std::string>* calls) const {
    const TokenVec& t = tokens_;
    for (std::size_t i = begin; i < end; ++i) {
      if (is_lambda_intro(i)) {
        std::size_t j = match_delim(tokens_, i) + 1;
        if (t[j].is("(")) j = match_delim(tokens_, j) + 1;
        while (t[j].ident() && !t[j].is("{") && j < end) ++j;
        if (t[j].is("{")) {
          i = match_delim(tokens_, j);
          continue;
        }
      }
      if (is_timer_ident(t[i]) &&
          (t[i + 1].is("=") ||
           (t[i + 1].is(".") && t[i + 2].is("cancel")))) {
        direct->insert(t[i].text);
        continue;
      }
      if (t[i].ident() && t[i + 1].is("(") && funcs_.count(t[i].text) > 0 &&
          !(t[i - 1].is("::") || t[i - 1].is(".") || t[i - 1].is("->"))) {
        calls->insert(t[i].text);
      }
    }
  }

  /// Flat per-function cancel/re-arm sets, closed transitively over the
  /// unqualified call graph. Deliberately path-insensitive: a cancel
  /// anywhere in a function (or its callees) counts for every edge the
  /// function implements, which errs toward fewer false positives.
  /// (Lambda bodies get their own narrower scopes during analysis — what
  /// matters when a callback fires is what the callback itself handles.)
  void build_timer_handled() {
    if (tm_ == nullptr) return;
    std::map<std::string, StateSet> direct;
    std::map<std::string, std::set<std::string>> calls;
    for (const auto& [name, fn] : funcs_) {
      collect_handles(fn.body_begin, fn.body_end, &direct[name],
                      &calls[name]);
    }
    tm_->handled = direct;
    bool grown = true;
    while (grown) {
      grown = false;
      for (const auto& [name, callees] : calls) {
        StateSet& mine = tm_->handled[name];
        for (const std::string& callee : callees) {
          const auto it = tm_->handled.find(callee);
          if (it == tm_->handled.end()) continue;
          for (const std::string& timer : it->second) {
            grown |= mine.insert(timer).second;
          }
        }
      }
    }
  }

  // --- shared helpers -----------------------------------------------------

  void diag(int line, const std::string& msg) {
    if (!emit_ || diags_ == nullptr) return;
    diags_->push_back(Diagnostic{kRule, file_.path, line, msg});
  }

  /// `State :: kX` at token i -> spec state name, advancing past it.
  std::optional<std::string> parse_state_ref(std::size_t& i) {
    const TokenVec& t = tokens_;
    if (!(t[i].is("State") && t[i + 1].is("::") && t[i + 2].ident())) {
      return std::nullopt;
    }
    std::string name = t[i + 2].text;
    if (name.size() > 1 && name[0] == 'k') name = name.substr(1);
    if (!spec_.has_state(name)) {
      diag(t[i + 2].line, "unknown state State::" + t[i + 2].text +
                              " (not declared in spec '" + spec_.name + "')");
      i += 3;
      return std::nullopt;
    }
    i += 3;
    return name;
  }

  /// Classifies an `if`/`assert` condition token range [begin, end).
  CondInfo parse_cond(std::size_t begin, std::size_t end) {
    const TokenVec& t = tokens_;
    CondInfo info;
    std::vector<bool> consumed(end - begin, false);
    for (std::size_t i = begin; i < end; ++i) {
      if (t[i].is("||")) info.has_or = true;
      if (!t[i].is("state_")) continue;
      if (i + 1 >= end || !(t[i + 1].is("==") || t[i + 1].is("!="))) continue;
      std::size_t j = i + 2;
      const std::optional<std::string> s = parse_state_ref(j);
      if (!s || j > end) continue;
      (t[i + 1].is("==") ? info.positives : info.negatives).insert(*s);
      for (std::size_t k = i; k < j; ++k) consumed[k - begin] = true;
    }
    info.pure = info.any_atom();
    for (std::size_t i = begin; i < end && info.pure; ++i) {
      if (consumed[i - begin]) continue;
      if (!(t[i].is("&&") || t[i].is("||") || t[i].is("(") || t[i].is(")"))) {
        info.pure = false;
      }
    }
    return info;
  }

  StateSet base_of(const Ctx& ctx) const {
    return ctx.known ? ctx.states : universe_;
  }

  /// Context for a branch taken when `cond` is true.
  Ctx refine_true(const Ctx& ctx, const CondInfo& cond) {
    if (!cond.any_atom()) return ctx;
    if (cond.has_or && !cond.pure) return ctx;  // can't constrain
    StateSet s = base_of(ctx);
    if (!cond.positives.empty()) {
      StateSet inter;
      for (const std::string& x : s) {
        if (cond.positives.count(x)) inter.insert(x);
      }
      s = std::move(inter);
    }
    for (const std::string& x : cond.negatives) s.erase(x);
    return Ctx::of(std::move(s));
  }

  /// Context for the else branch / for code after a returning then-branch
  /// (only derivable from pure single-polarity conditions).
  std::optional<Ctx> refine_false(const Ctx& ctx, const CondInfo& cond) {
    if (!cond.pure) return std::nullopt;
    StateSet s = base_of(ctx);
    if (!cond.positives.empty() && cond.negatives.empty()) {
      for (const std::string& x : cond.positives) s.erase(x);
      return Ctx::of(std::move(s));
    }
    if (cond.positives.empty() && !cond.negatives.empty()) {
      StateSet inter;
      for (const std::string& x : s) {
        if (cond.negatives.count(x)) inter.insert(x);
      }
      return Ctx::of(std::move(inter));
    }
    return std::nullopt;
  }

  // --- transition events --------------------------------------------------

  /// Records a transition into state `to` observed at `line` under `ctx`.
  /// Unknown contexts export the target to the enclosing function, whose
  /// call sites attribute it (deferred when the site sits in a lambda).
  void event(const Ctx& ctx, const std::string& to, int line, FuncInfo& self,
             bool in_lambda) {
    if (ctx.known) {
      if (!emit_) return;
      for (const std::string& from : ctx.states) {
        if (from == to) continue;
        out_.push_back(ExtractedTransition{from, to, line});
        if (tm_ != nullptr) {
          tm_->sites.push_back(TimerModel::Site{
              from, to, fn_stack_.empty() ? std::string() : fn_stack_.back(),
              std::set<std::string>(fired_stack_.begin(), fired_stack_.end()),
              line});
        }
      }
      return;
    }
    StateSet& pending = in_lambda ? self.deferred : self.immediate;
    changed_ |= pending.insert(to).second;
  }

  /// Records an arm of `timer` under `ctx`; unknown contexts export the
  /// arm to the enclosing function for call-site attribution, exactly
  /// like transition targets.
  void arm_event(const Ctx& ctx, const std::string& timer, FuncInfo& self) {
    if (ctx.known) {
      if (emit_ && tm_ != nullptr) {
        for (const std::string& s : ctx.states) {
          tm_->armed_in[timer].insert(s);
        }
      }
      return;
    }
    changed_ |= self.arms.insert(timer).second;
  }

  /// Call of helper `h` observed under `ctx`; returns the context after
  /// the call (immediate targets redirect it, deferred ones don't).
  Ctx helper_call(const Ctx& ctx, const FuncInfo& h, int line, FuncInfo& self,
                  bool in_lambda) {
    h_called_ = true;
    for (const std::string& to : h.immediate) {
      event(ctx, to, line, self, in_lambda);
    }
    for (const std::string& to : h.deferred) {
      event(ctx, to, line, self, in_lambda);
    }
    for (const std::string& timer : h.arms) arm_event(ctx, timer, self);
    if (!ctx.known) {
      // Propagate flavor-preserving so grand-callers attribute correctly.
      for (const std::string& to : h.immediate) {
        changed_ |= (in_lambda ? self.deferred : self.immediate).insert(to).second;
      }
      for (const std::string& to : h.deferred) {
        changed_ |= self.deferred.insert(to).second;
      }
    }
    if (!h.immediate.empty()) return Ctx::of(h.immediate);
    return ctx;
  }

  // --- statement walking --------------------------------------------------

  /// Index just past the statement starting at `i` (block, control
  /// statement with sub-statements, or `;`-terminated expression).
  std::size_t stmt_end(std::size_t i) {
    const TokenVec& t = tokens_;
    if (t[i].is("{")) return match_delim(tokens_, i) + 1;
    if (t[i].is("if") || t[i].is("for") || t[i].is("while") ||
        t[i].is("switch")) {
      std::size_t j = i + 1;
      while (!t[j].is("(") && j + 1 < t.size()) ++j;
      j = stmt_end(match_delim(tokens_, j) + 1);
      if (t[i].is("if") && t[j].is("else")) j = stmt_end(j + 1);
      return j;
    }
    if (t[i].is("do")) {
      std::size_t j = stmt_end(i + 1);  // body
      while (j + 1 < t.size() && !t[j].is(";")) ++j;
      return j + 1;
    }
    // Expression / return / break / declaration: to `;` at nesting depth 0.
    int depth = 0;
    for (std::size_t j = i; j + 1 < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (depth == 0 && x == ";") return j + 1;
    }
    return t.size() - 1;
  }

  bool is_lambda_intro(std::size_t i) const {
    const TokenVec& t = tokens_;
    if (!t[i].is("[")) return false;
    if (i == 0) return true;
    const std::string& p = t[i - 1].text;
    return p == "(" || p == "," || p == "=" || p == "return" || p == "{" ||
           p == ";" || p == "&&" || p == "||";
  }

  /// Walks an expression statement [begin, end): transition primitives,
  /// helper calls, asserts and nested lambdas.
  void walk_expression(std::size_t begin, std::size_t end, Ctx& ctx,
                       FuncInfo& self, bool in_lambda) {
    const TokenVec& t = tokens_;
    // Timer whose arming statement this expression is (empty otherwise);
    // the statement's lambda is that timer's expiry callback.
    std::string arm_timer;
    for (std::size_t i = begin; i < end; ++i) {
      // assert(state_ == State::kX): establishes context for the scope.
      if (t[i].is("assert") && t[i + 1].is("(")) {
        const std::size_t close = match_delim(tokens_, i + 1);
        const CondInfo cond = parse_cond(i + 2, close);
        if (cond.any_atom()) ctx = refine_true(ctx, cond);
        i = close;
        continue;
      }
      // X_timer_ = ...schedule...(...): an arm site. The timer is pending
      // in every state the statement runs in.
      if (is_timer_ident(t[i]) && t[i + 1].is("=")) {
        for (std::size_t j = i + 2; j < end && !t[j].is(";"); ++j) {
          if (t[j].ident() && t[j].text.size() >= 8 &&
              t[j].text.compare(0, 8, "schedule") == 0) {
            arm_event(ctx, t[i].text, self);
            arm_timer = t[i].text;
            break;
          }
        }
        ++i;  // past '='; the callback lambda is handled below
        continue;
      }
      // Lambda body: inherits the context at its definition site; its
      // unknown-context transitions attribute as *deferred*. Inside an
      // arming statement the lambda is the timer's expiry callback, so
      // transitions within it run with that timer already fired.
      if (is_lambda_intro(i)) {
        std::size_t j = match_delim(tokens_, i) + 1;
        if (t[j].is("(")) j = match_delim(tokens_, j) + 1;
        while (t[j].ident() && !t[j].is("{") && j < end) ++j;  // mutable etc.
        if (t[j].is("{")) {
          const std::size_t body_end = match_delim(tokens_, j);
          Ctx inner = ctx;
          if (!arm_timer.empty()) fired_stack_.push_back(arm_timer);
          if (tm_ != nullptr) {
            // The lambda is its own cancel scope: when the callback
            // fires, only what it (and its callees) cancels matters —
            // the enclosing function's other branches ran long before.
            const std::string scope =
                "<lambda:" + std::to_string(t[i].line) + ">";
            StateSet direct;
            std::set<std::string> calls;
            collect_handles(j + 1, body_end, &direct, &calls);
            StateSet& handled = tm_->handled[scope];
            handled.insert(direct.begin(), direct.end());
            for (const std::string& callee : calls) {
              const auto it = tm_->handled.find(callee);
              if (it == tm_->handled.end()) continue;
              handled.insert(it->second.begin(), it->second.end());
            }
            fn_stack_.push_back(scope);
          }
          analyze_stmts(j + 1, body_end, inner, self, /*in_lambda=*/true);
          if (tm_ != nullptr) fn_stack_.pop_back();
          if (!arm_timer.empty()) fired_stack_.pop_back();
          i = body_end;
        }
        continue;
      }
      // change_state(State::kX)
      if (t[i].is("change_state") && t[i + 1].is("(")) {
        std::size_t j = i + 2;
        const int line = t[i].line;
        if (const auto s = parse_state_ref(j)) {
          event(ctx, *s, line, self, in_lambda);
          ctx = Ctx::of({*s});
        }
        i = match_delim(tokens_, i + 1);
        continue;
      }
      // state_ = State::kX
      if (t[i].is("state_") && t[i + 1].is("=")) {
        std::size_t j = i + 2;
        const int line = t[i].line;
        if (const auto s = parse_state_ref(j)) {
          event(ctx, *s, line, self, in_lambda);
          ctx = Ctx::of({*s});
          i = j - 1;
        }
        continue;
      }
      // Helper / transient-function calls (plain, unqualified).
      if (t[i].ident() && t[i + 1].is("(") &&
          (i == 0 || !(t[i - 1].is("::") || t[i - 1].is(".") ||
                       t[i - 1].is("->")))) {
        if (!spec_.transient_fn.empty() && t[i].text == spec_.transient_fn) {
          event(ctx, spec_.transient_state, t[i].line, self, in_lambda);
          ctx = Ctx::unknown();  // fail() lands wherever its body goes
          continue;
        }
        const auto it = funcs_.find(t[i].text);
        if (it != funcs_.end() &&
            (!it->second.immediate.empty() || !it->second.deferred.empty() ||
             !it->second.arms.empty())) {
          ctx = helper_call(ctx, it->second, t[i].line, self, in_lambda);
        }
      }
    }
  }

  /// Walks a statement sequence, tracking context. Returns true when the
  /// last top-level statement is a `return`.
  bool analyze_stmts(std::size_t begin, std::size_t end, Ctx& ctx,
                     FuncInfo& self, bool in_lambda) {
    const TokenVec& t = tokens_;
    bool last_return = false;
    std::size_t i = begin;
    while (i < end) {
      last_return = false;
      if (t[i].is("if")) {
        std::size_t paren = i + 1;
        const std::size_t close = match_delim(tokens_, paren);
        const CondInfo cond = parse_cond(paren + 1, close);
        const std::size_t then_begin = close + 1;
        const std::size_t then_past = stmt_end(then_begin);
        Ctx then_ctx = refine_true(ctx, cond);
        bool then_returns;
        if (t[then_begin].is("{")) {
          then_returns = analyze_stmts(then_begin + 1, then_past - 1, then_ctx,
                                       self, in_lambda);
        } else {
          then_returns = analyze_stmts(then_begin, then_past, then_ctx, self,
                                       in_lambda);
        }
        std::size_t next = then_past;
        if (t[next].is("else")) {
          const std::size_t else_begin = next + 1;
          const std::size_t else_past = stmt_end(else_begin);
          Ctx else_ctx = refine_false(ctx, cond).value_or(ctx);
          if (t[else_begin].is("{")) {
            analyze_stmts(else_begin + 1, else_past - 1, else_ctx, self,
                          in_lambda);
          } else {
            analyze_stmts(else_begin, else_past, else_ctx, self, in_lambda);
          }
          next = else_past;
        } else if (then_returns) {
          // `if (state-pure) return;` — the code after runs elsewhere.
          if (const auto after = refine_false(ctx, cond)) ctx = *after;
        } else if (then_ctx.known) {
          // Fall-through join: the then branch may have reassigned
          // state_, so the code after it sees either the branch's final
          // states or the not-taken path's.
          const Ctx not_taken = refine_false(ctx, cond).value_or(ctx);
          if (not_taken.known) {
            StateSet joined = not_taken.states;
            joined.insert(then_ctx.states.begin(), then_ctx.states.end());
            ctx = Ctx::of(std::move(joined));
          }
        }
        i = next;
        continue;
      }
      if (t[i].is("switch")) {
        std::size_t paren = i + 1;
        const std::size_t close = match_delim(tokens_, paren);
        bool on_state = false;
        for (std::size_t j = paren + 1; j < close; ++j) {
          if (t[j].is("state_")) on_state = true;
        }
        const std::size_t body_open = close + 1;
        const std::size_t body_close = match_delim(tokens_, body_open);
        if (on_state) {
          analyze_state_switch(body_open + 1, body_close, ctx, self, in_lambda);
        } else {
          Ctx inner = ctx;
          analyze_stmts(body_open + 1, body_close, inner, self, in_lambda);
        }
        i = body_close + 1;
        continue;
      }
      if (t[i].is("for") || t[i].is("while")) {
        std::size_t paren = i + 1;
        const std::size_t close = match_delim(tokens_, paren);
        const std::size_t body_begin = close + 1;
        const std::size_t body_past = stmt_end(body_begin);
        Ctx inner = ctx;  // loop bodies don't refine or leak context
        if (t[body_begin].is("{")) {
          analyze_stmts(body_begin + 1, body_past - 1, inner, self, in_lambda);
        } else {
          analyze_stmts(body_begin, body_past, inner, self, in_lambda);
        }
        i = body_past;
        continue;
      }
      if (t[i].is("{")) {
        const std::size_t past = stmt_end(i);
        Ctx inner = ctx;
        analyze_stmts(i + 1, past - 1, inner, self, in_lambda);
        i = past;
        continue;
      }
      const std::size_t past = stmt_end(i);
      if (t[i].is("return")) last_return = true;
      walk_expression(i, past, ctx, self, in_lambda);
      i = past;
    }
    return last_return;
  }

  /// `switch (state_)` body: each case-label group is a known context.
  void analyze_state_switch(std::size_t begin, std::size_t end, const Ctx& ctx,
                            FuncInfo& self, bool in_lambda) {
    const TokenVec& t = tokens_;
    std::size_t i = begin;
    StateSet labels;
    bool is_default = false;
    std::size_t seg_start = 0;
    auto flush = [&](std::size_t seg_end) {
      if (seg_start == 0 || seg_start >= seg_end) return false;
      Ctx seg_ctx = ctx;
      if (!is_default && !labels.empty()) {
        seg_ctx = refine_true(ctx, CondInfo{labels, {}, true, false});
      }
      analyze_stmts(seg_start, seg_end, seg_ctx, self, in_lambda);
      return true;
    };
    while (i < end) {
      if (t[i].is("case") || t[i].is("default")) {
        // Consecutive labels with no statements between them accumulate
        // into one group (case kIdle: case kAdvertise: ...).
        if (flush(i)) {
          labels.clear();
          is_default = false;
        }
        seg_start = 0;
        if (t[i].is("default")) {
          is_default = true;
          i += 2;  // default :
        } else {
          std::size_t j = i + 1;
          if (const auto s = parse_state_ref(j)) labels.insert(*s);
          i = j + 1;  // skip the `:`
        }
        seg_start = i;
        continue;
      }
      i = stmt_end(i);
    }
    flush(end);
  }

  // --- driver -------------------------------------------------------------

  void analyze_all(bool emit) {
    emit_ = emit;
    if (emit_) out_.clear();
    for (auto& [name, fn] : funcs_) {
      Ctx ctx = Ctx::unknown();
      if (!spec_.transient_fn.empty() && name == spec_.transient_fn) {
        ctx = Ctx::of({spec_.transient_state});
      }
      h_called_ = false;
      fn_stack_.assign(1, name);
      fired_stack_.clear();
      analyze_stmts(fn.body_begin, fn.body_end, ctx, fn, /*in_lambda=*/false);
    }
    if (emit_) {
      // Record which helpers were called (for the unattributed check).
      for (auto& [name, fn] : funcs_) {
        (void)name;
        fn.called = false;
      }
      for (auto& [name, fn] : funcs_) {
        (void)fn;
        mark_calls_of(name);
      }
    }
  }

  /// Marks `callee` as called if any other function's body invokes it.
  void mark_calls_of(const std::string& callee) {
    const TokenVec& t = tokens_;
    for (const auto& [name, fn] : funcs_) {
      if (name == callee) continue;
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (t[i].text == callee && t[i + 1].is("(") &&
            !(t[i - 1].is("::") || t[i - 1].is(".") || t[i - 1].is("->"))) {
          funcs_[callee].called = true;
          return;
        }
      }
    }
  }

  void report_unattributed() {
    if (diags_ == nullptr) return;
    for (const auto& [name, fn] : funcs_) {
      if (fn.immediate.empty() && fn.deferred.empty()) continue;
      if (fn.called) continue;
      StateSet all = fn.immediate;
      all.insert(fn.deferred.begin(), fn.deferred.end());
      std::string targets;
      for (const std::string& s : all) {
        if (!targets.empty()) targets += ", ";
        targets += s;
      }
      diags_->push_back(Diagnostic{
          kRule, file_.path, fn.line,
          "function '" + name + "' changes state (to " + targets +
              ") but its source state is unresolvable: add a state guard "
              "or an assert(state_ == State::k...) at its entry"});
    }
  }

  const SourceFile& file_;
  const MachineSpec& spec_;
  std::vector<Diagnostic>* diags_;
  TimerModel* tm_;
  TokenVec tokens_;
  StateSet universe_;
  std::map<std::string, FuncInfo> funcs_;
  std::vector<ExtractedTransition> out_;
  std::vector<std::string> fn_stack_;
  std::vector<std::string> fired_stack_;
  bool emit_ = false;
  bool changed_ = false;
  bool h_called_ = false;
};

}  // namespace

std::vector<ExtractedTransition> extract_transitions(
    const SourceFile& file, const MachineSpec& spec,
    std::vector<Diagnostic>* diags) {
  return Extractor(file, spec, diags).run();
}

TimerModel extract_timer_model(const SourceFile& file,
                               const MachineSpec& spec,
                               std::vector<Diagnostic>* diags) {
  TimerModel tm;
  Extractor(file, spec, diags, &tm).run();
  return tm;
}

std::vector<Diagnostic> check_state_machine(const SourceFile& file,
                                            const MachineSpec& spec) {
  std::vector<Diagnostic> diags;
  const std::vector<ExtractedTransition> raw =
      extract_transitions(file, spec, &diags);

  std::map<std::pair<std::string, std::string>, int> table;  // -> first line
  for (const ExtractedTransition& tr : raw) {
    table.emplace(std::make_pair(tr.from, tr.to), tr.line);
  }
  for (const auto& [edge, line] : table) {
    if (spec.transitions.count(edge) == 0) {
      diags.push_back(Diagnostic{
          "state-machine", file.path, line,
          "forbidden transition " + edge.first + " -> " + edge.second +
              " (not in spec '" + spec.name + "')"});
    }
  }
  for (const auto& edge : spec.transitions) {
    if (table.count(edge) == 0) {
      diags.push_back(Diagnostic{
          "state-machine", file.path, 0,
          "spec transition " + edge.first + " -> " + edge.second +
              " has no implementing code in " + file.path});
    }
  }
  return diags;
}

}  // namespace mnp::lint

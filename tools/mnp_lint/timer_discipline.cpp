// Rule family: timer discipline.
//
// The classic dissemination-protocol bug is a stale timer: a state arms a
// periodic timer, an event transitions the node elsewhere, and the timer
// later fires in a state that never expected it. The simulator's lambdas
// guard against some of this dynamically, but a guard is a symptom — the
// contract is that every outgoing edge of a state cancels or re-arms
// every timer that state keeps pending.
//
// check_timer_discipline verifies that contract against the machine
// spec: the extractor (state_machine.cpp) attributes arm sites to source
// states through the same guard/helper fixed point as transitions, and
// each transition site is checked against the cancel/re-arm closure of
// the function that emitted it. A timer whose own expiry callback
// performs the transition has already fired and is exempt. Exceptions
// that survive a transition by design (MNP's request_timer_) take an
// allowlist entry: "timer-discipline <file> <timer>".
//
// check_reboot_reset is the spec-independent companion: any file that
// defines reset_for_reboot() must cancel (or reassign) every *timer_
// member it uses, transitively — a pre-reboot expiry must never fire
// into the rebooted node. This also covers protocols without a machine
// spec (xnp_node).

#include <tuple>

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

constexpr const char* kRule = "timer-discipline";
constexpr const char* kRebootRule = "reboot-reset";

bool is_timer_ident(const Token& t) {
  return t.ident() && t.text.size() >= 6 &&
         t.text.compare(t.text.size() - 6, 6, "timer_") == 0;
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default",
      "return", "break", "continue", "new", "delete", "sizeof", "throw"};
  return kKeywords.count(s) > 0;
}

struct Body {
  std::size_t begin = 0, end = 0;  // token range, exclusive end
};

bool lambda_intro(const std::vector<Token>& t, std::size_t i) {
  if (!t[i].is("[")) return false;
  if (i == 0) return true;
  const std::string& p = t[i - 1].text;
  return p == "(" || p == "," || p == "=" || p == "return" || p == "{" ||
         p == ";" || p == "&&" || p == "||";
}

/// Function-body discovery, mirroring the extractor's (Class::method and
/// free-function forms; first definition wins).
std::map<std::string, Body> find_bodies(const std::vector<Token>& t) {
  std::map<std::string, Body> out;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    std::string name;
    std::size_t paren = 0;
    if (t[i].ident() && t[i + 1].is("::") && t[i + 2].ident() &&
        t[i + 3].is("(")) {
      name = t[i + 2].text;
      paren = i + 3;
    } else if (t[i].ident() && t[i + 1].is("(") && i > 0 &&
               t[i - 1].ident() && !is_keyword(t[i - 1].text) &&
               !is_keyword(t[i].text)) {
      name = t[i].text;
      paren = i + 1;
    } else {
      continue;
    }
    std::size_t k = match_delim(t, paren) + 1;
    while (t[k].is("const") || t[k].is("noexcept") || t[k].is("override") ||
           t[k].is("final")) {
      ++k;
    }
    if (!t[k].is("{")) continue;
    const std::size_t end = match_delim(t, k);
    if (out.count(name) == 0) out[name] = Body{k + 1, end};
    i = end;
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_timer_discipline(const SourceFile& file,
                                               const MachineSpec& spec,
                                               const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  // State-machine extraction problems are check_state_machine's findings;
  // a null diags sink keeps the two rule families non-overlapping.
  const TimerModel tm = extract_timer_model(file, spec, nullptr);
  std::set<std::tuple<std::string, std::string, std::string>> seen;
  for (const TimerModel::Site& site : tm.sites) {
    const auto handled = tm.handled.find(site.fn);
    for (const auto& [timer, states] : tm.armed_in) {
      if (states.count(site.from) == 0) continue;
      if (site.fired.count(timer) > 0) continue;
      if (handled != tm.handled.end() && handled->second.count(timer) > 0) {
        continue;
      }
      if (allow.allows(kRule, file.path, timer)) continue;
      if (!seen.emplace(site.from, site.to, timer).second) continue;
      diags.push_back(Diagnostic{
          kRule, file.path, site.line,
          "'" + timer + "' is armed in state " + site.from +
              " but neither cancelled nor re-armed on the " + site.from +
              " -> " + site.to + " transition (in '" + site.fn +
              "'): a stale expiry would fire in " + site.to});
    }
  }
  return diags;
}

std::vector<Diagnostic> check_reboot_reset(const SourceFile& file,
                                           const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  const std::vector<Token> t = lex(file.content);
  const std::map<std::string, Body> bodies = find_bodies(t);
  if (bodies.count("reset_for_reboot") == 0) return diags;

  // Every timer the file touches, with its first-use line.
  std::map<std::string, int> timers;
  for (const Token& tok : t) {
    if (is_timer_ident(tok)) timers.emplace(tok.text, tok.line);
  }

  // Cancel/reassign closure from reset_for_reboot over unqualified calls.
  std::set<std::string> handled, visited;
  std::vector<std::string> work = {"reset_for_reboot"};
  while (!work.empty()) {
    const std::string fn = work.back();
    work.pop_back();
    if (!visited.insert(fn).second) continue;
    const Body& b = bodies.at(fn);
    for (std::size_t i = b.begin; i < b.end; ++i) {
      // Skip callback bodies: a cancel inside a lambda armed here runs
      // when that timer fires, not during the reset itself.
      if (lambda_intro(t, i)) {
        std::size_t j = match_delim(t, i) + 1;
        if (t[j].is("(")) j = match_delim(t, j) + 1;
        while (t[j].ident() && !t[j].is("{") && j < b.end) ++j;
        if (t[j].is("{")) {
          i = match_delim(t, j);
          continue;
        }
      }
      if (is_timer_ident(t[i]) &&
          (t[i + 1].is("=") ||
           (t[i + 1].is(".") && t[i + 2].is("cancel")))) {
        handled.insert(t[i].text);
        continue;
      }
      if (t[i].ident() && t[i + 1].is("(") && bodies.count(t[i].text) > 0 &&
          !(t[i - 1].is("::") || t[i - 1].is(".") || t[i - 1].is("->"))) {
        work.push_back(t[i].text);
      }
    }
  }

  for (const auto& [timer, line] : timers) {
    if (handled.count(timer) > 0) continue;
    if (allow.allows(kRebootRule, file.path, timer)) continue;
    diags.push_back(Diagnostic{
        kRebootRule, file.path, line,
        "'" + timer + "' is not cancelled by reset_for_reboot(): a "
        "pre-reboot expiry would fire into the rebooted node"});
  }
  return diags;
}

}  // namespace mnp::lint

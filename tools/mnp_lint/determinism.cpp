// Rule family 2: determinism lint.
//
// The simulator's contract (DESIGN.md section 2) is that a (seed, config)
// pair fully determines every trace byte. Two things silently break that:
// wall-clock / global-PRNG calls, and iteration over unordered containers
// feeding any output path. Both are banned by identifier under src/; the
// per-file allowlist documents vetted exceptions (e.g. the hash index in
// src/diff/delta.cpp, whose ordering sensitivity is neutralized by a
// deterministic tie-break).

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

constexpr const char* kRule = "determinism";

/// Identifiers banned outright wherever they appear.
const std::set<std::string>& banned_idents() {
  static const std::set<std::string> kBanned = {
      "rand",          "srand",          "drand48",
      "lrand48",       "random_device",  "system_clock",
      "high_resolution_clock",           "gettimeofday",
      "clock_gettime", "getrandom",      "rand_r",
      "steady_clock",
  };
  return kBanned;
}

/// Unordered containers: allowed only with an allowlist entry explaining
/// why iteration order cannot reach simulator output.
const std::set<std::string>& unordered_containers() {
  static const std::set<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kContainers;
}

}  // namespace

std::vector<Diagnostic> check_determinism(const SourceFile& file,
                                          const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  const std::vector<Token> tokens = lex(file.content);
  auto report = [&](int line, const std::string& token,
                    const std::string& why) {
    if (allow.allows(kRule, file.path, token)) return;
    diags.push_back(Diagnostic{
        kRule, file.path, line,
        "'" + token + "' " + why +
            " — use sim::Rng / sim::Scheduler time, or allowlist with "
            "justification"});
  };

  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.ident()) continue;
    if (banned_idents().count(t.text)) {
      report(t.line, t.text, "is nondeterministic across runs");
      continue;
    }
    if (unordered_containers().count(t.text)) {
      report(t.line, t.text,
             "has seed-dependent iteration order");
      continue;
    }
    // `time(...)` / `clock(...)` as calls only, and only when they are not
    // member accesses (`sched.time()` is the simulator clock and fine).
    if ((t.text == "time" || t.text == "clock") && tokens[i + 1].is("(") &&
        (i == 0 || !(tokens[i - 1].is(".") || tokens[i - 1].is("->")))) {
      report(t.line, t.text, "() reads the wall clock");
    }
  }
  return diags;
}

}  // namespace mnp::lint

// Spec + allowlist parsing. The formats are line-oriented and documented
// in DESIGN.md section 8; `#` starts a comment anywhere on a line.

#include <algorithm>
#include <sstream>

#include "lexer.hpp"
#include "lint.hpp"

namespace mnp::lint {

namespace {

/// Strips a trailing "# ..." comment and surrounding whitespace.
std::string strip(const std::string& raw) {
  std::string line = raw.substr(0, raw.find('#'));
  const auto b = line.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = line.find_last_not_of(" \t\r");
  return line.substr(b, e - b + 1);
}

std::vector<std::string> words(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

}  // namespace

std::string Diagnostic::str() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool MachineSpec::has_state(const std::string& s) const {
  return std::find(states.begin(), states.end(), s) != states.end();
}

bool parse_machine_spec(const std::string& text, MachineSpec* spec,
                        std::string* error) {
  *spec = MachineSpec{};
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + why;
    return false;
  };
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = strip(raw);
    if (line.empty()) continue;
    const std::vector<std::string> w = words(line);
    if (w[0] == "machine" && w.size() == 2) {
      spec->name = w[1];
    } else if (w[0] == "file" && w.size() == 2) {
      spec->file = w[1];
    } else if (w[0] == "states" && w.size() >= 2) {
      spec->states.assign(w.begin() + 1, w.end());
    } else if (w[0] == "transient" && w.size() == 3) {
      spec->transient_state = w[1];
      spec->transient_fn = w[2];
    } else if (w[0] == "initial" && w.size() == 2) {
      spec->initial = w[1];
    } else if (w.size() == 3 && w[1] == "->") {
      if (!spec->has_state(w[0]) || !spec->has_state(w[2])) {
        return fail("transition references undeclared state: " + line);
      }
      if (w[0] == w[2]) return fail("self-transitions are implicit: " + line);
      if (!spec->transitions.emplace(w[0], w[2]).second) {
        return fail("duplicate transition: " + line);
      }
    } else {
      return fail("unrecognized directive: " + line);
    }
  }
  if (spec->name.empty()) return fail("missing 'machine' directive");
  if (spec->file.empty()) return fail("missing 'file' directive");
  if (spec->states.empty()) return fail("missing 'states' directive");
  if (!spec->initial.empty() && !spec->has_state(spec->initial)) {
    return fail("initial state not declared: " + spec->initial);
  }
  if (!spec->transient_state.empty() && !spec->has_state(spec->transient_state)) {
    return fail("transient state not declared: " + spec->transient_state);
  }
  return true;
}

void Allowlist::add(std::string rule, std::string file, std::string token) {
  entries_.push_back(
      AllowEntry{std::move(rule), std::move(file), std::move(token)});
}

namespace {

/// Path-suffix match aligned on a '/' component boundary, so absolute and
/// repo-relative spellings of the same file agree.
bool path_matches(const std::string& path, const std::string& suffix) {
  if (path == suffix) return true;
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

}  // namespace

bool Allowlist::allows(const std::string& rule, const std::string& file,
                       const std::string& token) const {
  for (const AllowEntry& e : entries_) {
    if (e.rule != rule || e.token != token) continue;
    if (path_matches(file, e.file)) return true;
  }
  return false;
}

Allowlist parse_allowlist(const std::string& text) {
  Allowlist allow;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = strip(raw);
    if (line.empty()) continue;
    const std::vector<std::string> w = words(line);
    if (w.size() >= 3) allow.add(w[0], w[1], w[2]);
  }
  return allow;
}

std::vector<Diagnostic> check_allowlist_staleness(
    const std::vector<SourceFile>& files, const Allowlist& allow) {
  std::vector<Diagnostic> diags;
  for (const AllowEntry& e : allow.entries()) {
    const SourceFile* target = nullptr;
    for (const SourceFile& f : files) {
      if (path_matches(f.path, e.file)) {
        target = &f;
        break;
      }
    }
    if (target == nullptr) {
      diags.push_back(Diagnostic{
          "allowlist", e.file, 0,
          "stale allowlist entry: '" + e.file +
              "' is not in the scanned file set (rule '" + e.rule +
              "', token '" + e.token + "') — delete the line"});
      continue;
    }
    bool found = false;
    for (const Token& t : lex(target->content)) {
      if (t.text == e.token) {
        found = true;
        break;
      }
    }
    if (!found) {
      diags.push_back(Diagnostic{
          "allowlist", target->path, 0,
          "stale allowlist entry: token '" + e.token +
              "' no longer appears in " + target->path + " (rule '" + e.rule +
              "') — delete the line"});
    }
  }
  return diags;
}

}  // namespace mnp::lint

// Minimal C++ tokenizer for mnp_lint.
//
// The lint rules (DESIGN.md section 8) work on token streams, not ASTs: a
// full frontend (libclang) is deliberately out of the dependency budget,
// and the rules are written against this repository's idioms, which a
// tokenizer resolves unambiguously. The lexer strips comments, string and
// character literals and preprocessor lines, so a banned identifier inside
// a comment or a log message never trips a rule.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mnp::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;

  bool is(std::string_view t) const { return text == t; }
  bool ident() const { return kind == Kind::kIdent; }
};

/// Tokenizes C++ source. Comments, literals' contents and preprocessor
/// directives are dropped (strings survive as a single kString token with
/// empty text so token adjacency stays meaningful). Always ends with one
/// kEnd token.
std::vector<Token> lex(std::string_view src);

/// Index of the token matching the opener at `open` (which must be one of
/// ( [ { ), honoring nesting; returns tokens.size()-1 (the kEnd token) if
/// unbalanced.
std::size_t match_delim(const std::vector<Token>& tokens, std::size_t open);

}  // namespace mnp::lint

#!/usr/bin/env bash
# Docs/build-tree consistency check: every `build/.../<binary>` path named
# in the docs (README quickstarts, EXPERIMENTS.md regeneration recipes)
# must refer to an executable target declared somewhere in the CMake tree,
# so a renamed or deleted bench cannot leave a stale recipe behind. Runs
# without configuring a build — targets are parsed from CMakeLists.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md EXPERIMENTS.md DESIGN.md)
fail=0

# Every executable target declared in the tree.
targets=$(grep -rhoE '(add_executable|mnp_add_(bench|test|example))\( *[A-Za-z0-9_]+' \
            --include=CMakeLists.txt . |
          sed -E 's/.*\( *//' | sort -u)

# Every build/<dir>/<name> path mentioned in the docs (fenced or inline).
mentions=$(grep -hoE '(\./)?build[-A-Za-z0-9_]*/[A-Za-z0-9_/]+' "${docs[@]}" |
           sed 's|^\./||' | sort -u)

checked=0
while IFS= read -r path; do
  [ -n "$path" ] || continue
  name=$(basename "$path")
  case "$name" in
    bench | tests | examples | tools) continue ;;  # bare directory mention
    *_) continue ;;                                # glob prefix (bench_*)
  esac
  checked=$((checked + 1))
  if ! grep -qx "$name" <<< "$targets"; then
    echo "check_docs: '$path' names no executable target ('$name')" >&2
    fail=1
  fi
done <<< "$mentions"

# The observability flags the recipes advertise must exist in the parser.
for flag in --trace-out --metrics-out; do
  if ! grep -q -- "\"$flag\"" src/harness/observe.cpp; then
    echo "check_docs: documented flag $flag not found in observe.cpp" >&2
    fail=1
  fi
done

# Protocol drift gate: the set of `--protocol` values the CLI accepts and
# the set the docs advertise must match in both directions. Accepted
# values are parsed from the mnp_sim_cli dispatch (`v == "name"` inside
# the --protocol branch); documented values from every `--protocol name`
# mention in the user-facing docs.
accepted=$(sed -n '/--protocol/,/^    } else if/p' examples/mnp_sim_cli.cpp |
           grep -oE 'v == "[a-z]+"' | sed -E 's/v == "([a-z]+)"/\1/' | sort -u)
documented=$(grep -hoE '\-\-protocol [a-z|]+' README.md DESIGN.md PROTOCOLS.md EXPERIMENTS.md 2>/dev/null |
             sed 's/--protocol //' | tr '|' '\n' | sort -u || true)
if [ -z "$accepted" ]; then
  echo "check_docs: could not parse accepted --protocol values from mnp_sim_cli.cpp" >&2
  fail=1
fi
while IFS= read -r p; do
  [ -n "$p" ] || continue
  if ! grep -qx "$p" <<< "$documented"; then
    echo "check_docs: CLI accepts --protocol $p but no doc mentions it" >&2
    fail=1
  fi
done <<< "$accepted"
while IFS= read -r p; do
  [ -n "$p" ] || continue
  if ! grep -qx "$p" <<< "$accepted"; then
    echo "check_docs: docs mention --protocol $p but the CLI rejects it" >&2
    fail=1
  fi
done <<< "$documented"

# Fleet-service endpoint gate: the HTTP routes mnp_simd registers
# (`add_route("METHOD", "/path", ...)` in src/service/server.cpp) and the
# endpoint table in DESIGN.md §14 must match in both directions, so a
# route can be neither added silently nor documented speculatively.
served=$(grep -hoE 'add_route\("(GET|POST|PUT|DELETE)", "[^"]+"' \
           src/service/server.cpp |
         sed -E 's/add_route\("([A-Z]+)", "([^"]+)"/\1 \2/' | sort -u)
endpoints_doc=$(grep -hoE '^\| `(GET|POST|PUT|DELETE)` \| `[^`]+`' DESIGN.md |
                sed -E 's/^\| `([A-Z]+)` \| `([^`]+)`/\1 \2/' | sort -u)
if [ -z "$served" ]; then
  echo "check_docs: could not parse add_route registrations from src/service/server.cpp" >&2
  fail=1
fi
while IFS= read -r route; do
  [ -n "$route" ] || continue
  if ! grep -qxF "$route" <<< "$endpoints_doc"; then
    echo "check_docs: server routes '$route' but DESIGN.md's endpoint table omits it" >&2
    fail=1
  fi
done <<< "$served"
while IFS= read -r route; do
  [ -n "$route" ] || continue
  if ! grep -qxF "$route" <<< "$served"; then
    echo "check_docs: DESIGN.md documents endpoint '$route' but the server has no such route" >&2
    fail=1
  fi
done <<< "$endpoints_doc"

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK ($checked documented binary paths resolve to targets)"
fi
exit "$fail"
